"""Concurrency-safety rules for the shard dispatch contract (RL2xx).

The rule *driver* for the escape/ownership analysis in
:mod:`repro.check.escape`: it parses the analyzed tree, builds the
contract registry and project call graph once, runs RL201–RL203 over
every ``shard/`` module's dispatch sites, adds the syntactic RL204
barrier-bypass scan, and reports through the same
:class:`~repro.check.reprolint.Finding` / pragma machinery as the
shallow and deep layers.

=======  ==============================================================
RL201    thread-escape: state reachable from a dispatched thunk that is
         neither one shard's engine, immutable, ``@shared_readonly``,
         nor fresh per-thunk data escapes to a worker thread.
RL202    ownership-partition: two dispatched thunks may alias the same
         mutable root (constant/loop-invariant shard index, whole shard
         container captured).
RL203    shared-read-immutability: a ``@shared_readonly`` object is
         written on some path reachable from a dispatched thunk.
RL204    barrier-bypass: executor primitives (``_executor``, ``submit``,
         ``as_completed``, ``ThreadPoolExecutor``) used outside
         ``ShardWorkerPool`` — results or accounting could be observed
         before the scatter barrier.
=======  ==============================================================

Every static rule has a runtime oracle: the
:class:`~repro.check.sanitizer.OwnershipSanitizer` claims a shard id per
thunk and every engine substrate mutation checks the claim, so code the
static pass cannot see (opaque thunk factories, data-dependent shard
choices) still fails loudly in debug mode.  See DESIGN.md §10.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.check.callgraph import build_callgraph
from repro.check.deepcheck import _Module, _parse_modules, _Sink
from repro.check.escape import analyze_module, build_registry
from repro.check.reprolint import (
    Finding,
    Rule,
    filter_findings,
    module_rel_path,
)

__all__ = ["RACE_RULES", "race_lint_sources", "race_lint_paths"]

RACE_RULES: tuple[Rule, ...] = (
    Rule(
        "RL201",
        "thread-escape",
        "state escaping into a dispatched thunk must be one shard's engine, "
        "immutable, shared-readonly, or fresh",
        scope="shard/ dispatch sites",
    ),
    Rule(
        "RL202",
        "ownership-partition",
        "no two dispatched thunks may alias the same mutable root (distinct "
        "shard per thunk)",
        scope="shard/ dispatch sites",
    ),
    Rule(
        "RL203",
        "shared-read-immutability",
        "@shared_readonly objects must not be written on any path reachable "
        "from a dispatched thunk",
        scope="shard/ (reachable from dispatched thunks)",
    ),
    Rule(
        "RL204",
        "barrier-bypass",
        "no executor primitives outside ShardWorkerPool; pool.run is the only "
        "fork/join seam",
        scope="shard/ (pool.py owns the barrier)",
    ),
)

#: modules the contract binds; the pool implements the barrier itself.
_SCOPE_PREFIX = "shard/"
_BARRIER_OWNER = "shard/pool.py"

#: executor primitives whose appearance outside the pool bypasses the
#: scatter barrier (fork without the blessed join).
_EXECUTOR_ATTRS = frozenset({"_executor"})
_EXECUTOR_CALLS = frozenset({"submit", "map_async", "apply_async"})
_EXECUTOR_NAMES = frozenset({"as_completed", "ThreadPoolExecutor", "ProcessPoolExecutor", "wait"})


def _in_scope(rel: str) -> bool:
    return rel.startswith(_SCOPE_PREFIX) and rel != _BARRIER_OWNER


def _rule_barrier_bypass(module: _Module, sink: _Sink) -> None:
    flagged_lines: set[int] = set()

    def add(node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if line in flagged_lines:
            return  # one finding per line: chained primitives are one bypass
        flagged_lines.add(line)
        sink.add(module.path, node, "RL204", message)

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name: Optional[str] = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _EXECUTOR_CALLS:
                add(
                    node,
                    f"scatter barrier bypassed: {name}() dispatches work "
                    "outside the ShardWorkerPool.run seam, so results and "
                    "accounting can be read before every thunk finished",
                )
                continue
            if name in _EXECUTOR_NAMES:
                add(
                    node,
                    f"scatter barrier bypassed: {name}() forks or joins "
                    "threads outside ShardWorkerPool; pool.run is the only "
                    "fork/join seam (and the only happens-before edge)",
                )
                continue
        if isinstance(node, ast.Attribute) and node.attr in _EXECUTOR_ATTRS:
            add(
                node,
                "scatter barrier bypassed: direct executor access outside "
                "ShardWorkerPool; dispatch through pool.run so the barrier "
                "orders thunk effects before foreground reads",
            )


def race_lint_sources(
    files: dict[str, tuple[str, str]],
    rules: Optional[Iterable[str]] = None,
    *,
    apply_pragmas: bool = True,
) -> list[Finding]:
    """Run the race rules over ``rel -> (display path, source)``.

    ``rules`` restricts the run to a subset of RL2xx ids;
    ``apply_pragmas=False`` keeps suppressed findings (stale-pragma audit).
    """
    active = (
        frozenset(rules) if rules is not None else frozenset(r.rule_id for r in RACE_RULES)
    )
    modules = _parse_modules(files)
    sink = _Sink()
    scoped = [m for m in modules if _in_scope(m.rel)]
    if scoped:
        trees = {m.rel: m.tree for m in modules}
        display = {m.rel: m.path for m in modules}
        graph = build_callgraph(trees)
        registry = build_registry(trees, graph)
        for module in scoped:
            if "RL204" in active:
                _rule_barrier_bypass(module, sink)
            if active & {"RL201", "RL202", "RL203"}:
                for raw in analyze_module(module.rel, module.tree, registry, graph, active):
                    sink.add(
                        display.get(raw.rel, raw.rel), raw.node, raw.rule, raw.message
                    )
    raw_findings = sorted(sink.raw, key=lambda f: (f.path, f.line, f.col, f.rule))
    if not apply_pragmas:
        return raw_findings
    lines_by_path = {m.path: m.source.splitlines() for m in modules}
    return filter_findings(raw_findings, lines_by_path)


def race_lint_paths(
    paths: Sequence[str | Path],
    rules: Optional[Iterable[str]] = None,
    *,
    apply_pragmas: bool = True,
) -> list[Finding]:
    """Run the race rules over files/directories (tests excluded)."""
    files: dict[str, tuple[str, str]] = {}
    for entry in paths:
        path = Path(entry)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            if "tests" in file.parts or file.suffix != ".py":
                continue
            files[module_rel_path(file)] = (str(file), file.read_text(encoding="utf-8"))
    return race_lint_sources(files, rules, apply_pragmas=apply_pragmas)
