"""Charge-effect analysis: the RL3xx rule family.

Every committed result rests on the cost model being charged *exactly
right*: each physical action charges ``SimClock``/``SimDisk`` once on
every control-flow path, in the right accounting bucket (foreground
``cpu_ns`` vs ``background_ns``), and never on cache-hit or exception
paths.  This module proves (or refutes) that statically: a summary-based
interprocedural pass over the CFG (:mod:`~repro.check.cfg`) and call
graph (:mod:`~repro.check.callgraph`) infers, per function, a *count
interval* ``[lo, hi]`` for each of the four charge effects
(``disk_read``, ``disk_write``, ``cpu_charge``, ``bg_charge``; ``hi``
saturates at ``MANY`` = "2 or more"), then checks the contracts declared
with :func:`repro.sim.effects.charges`:

=======  ==============================================================
RL301    charge-completeness: a declared effect occurs within its
         declared multiplicity on every path — no zero-charge fast path
         unless guarded by a recognized cache-hit predicate, no
         undeclared effect, no declared-but-unreachable effect.
RL302    double-charge: no path may charge a declared effect more times
         than its declared upper multiplicity, including transitively
         through helpers (the bug class golden diffs cannot localize).
RL303    bucket-confusion: code reachable inline from a ``KVSystem``
         foreground verb must not charge ``background_ns``, and code
         reachable from a scheduler-registered maintenance runner must
         not charge foreground ``cpu_ns`` — unless the charging function
         *declares* that effect (the declaration is the audited record
         of a deliberate accounting decision, e.g. release-stall CPU).
RL304    exception-path charge skew: a ``raise`` edge between a
         self-rooted state mutation and its paired charge (or vice
         versa) lets an exception strand accounting mid-update.
         Extends RL103's pairing idea from CFG-local bookkeeping to
         charge semantics.  Scoped to ``sim/``/``diskbtree/``/``lsm/``/
         ``core/``.
=======  ==============================================================

RL305 is the runtime half: :class:`~repro.check.chargeaudit.ChargeAuditor`
replays sampled verbs against the summaries computed here (the same
static/dynamic pairing as RL201–204 and the ``OwnershipSanitizer``).

Resolution model (known imprecision — see DESIGN.md §12)
--------------------------------------------------------

Effects propagate only along *confident* call edges: same-module names,
``self``/``cls`` methods, imports, receivers typed by the curated field
table (``self.index`` is an ``IndeXY``, a ``diskbtree`` ``self.pool`` is
a ``BufferPool``, ...), and project-unique method names.  Unresolvable
calls contribute **no** effects; each summary carries a ``complete`` bit
(False when an unresolved call *could* name a charging function) so the
runtime auditor knows whether the upper bound is trustworthy.  Work
routed through the ``BackgroundScheduler`` seam is deliberately opaque
(``_run_one`` is modelled as effect-free), mirroring both the RL101
call-graph seam and the auditor, which suspends counting inside
scheduler-run work.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.check.callgraph import (
    CallGraph,
    FunctionInfo,
    _attr_chain,
    build_callgraph,
)
from repro.check.cfg import CFG, Element, build_cfg
from repro.check.dataflow import _use_exprs
from repro.check.deepcheck import _Module, _parse_modules, _Sink
from repro.check.reprolint import (
    Finding,
    Rule,
    filter_findings,
    module_rel_path,
)
from repro.sim.effects import EFFECT_NAMES, MANY

__all__ = [
    "CHARGE_RULES",
    "ChargeAnalysis",
    "ChargeSummary",
    "analyze_paths",
    "analyze_sources",
    "charge_lint_paths",
    "charge_lint_sources",
]

CHARGE_RULES: tuple[Rule, ...] = (
    Rule(
        "RL301",
        "charge-completeness",
        "every path through a @charges function charges each declared effect "
        "within its multiplicity (cache-hit guards excepted)",
        scope="@charges-declared functions",
    ),
    Rule(
        "RL302",
        "double-charge",
        "no path charges a declared effect more times than its declared "
        "upper bound, including transitively through helpers",
        scope="@charges-declared functions",
    ),
    Rule(
        "RL303",
        "bucket-confusion",
        "foreground verbs must not reach undeclared background_ns charges; "
        "maintenance runners must not reach undeclared cpu_ns charges",
        scope="sim/ diskbtree/ lsm/ art/ btree/ core/ shard/ systems/",
    ),
    Rule(
        "RL304",
        "exception-charge-skew",
        "no raise edge between a state mutation and its paired charge "
        "(or vice versa)",
        scope="sim/ diskbtree/ lsm/ core/",
    ),
    Rule(
        "RL305",
        "charge-audit",
        "runtime cross-validation: ChargeAuditor verb multisets must lie "
        "within the static summaries (bench --sanitize)",
        scope="runtime oracle (chargeaudit.py); not a lint-pass rule",
    ),
)

#: modules whose code participates in the charge analysis.
_SCOPE_PREFIXES = (
    "sim/",
    "diskbtree/",
    "lsm/",
    "art/",
    "btree/",
    "core/",
    "shard/",
    "systems/",
    "cache/",
)

#: RL304 is restricted to the packages whose charge/mutation pairing the
#: committed results depend on most directly (noise control; widen as
#: contracts land elsewhere).
_SKEW_PREFIXES = ("sim/", "diskbtree/", "lsm/", "core/")

# ----------------------------------------------------------------------
# the effect lattice
# ----------------------------------------------------------------------

_N_EFFECTS = len(EFFECT_NAMES)
_DR, _DW, _CPU, _BG = range(_N_EFFECTS)
_EFFECT_INDEX = {name: i for i, name in enumerate(EFFECT_NAMES)}

Interval = tuple[int, int]
Vec = tuple[Interval, ...]

_ZERO_IV: Interval = (0, 0)
_ONE_IV: Interval = (1, 1)
_MAYBE_IV: Interval = (0, 1)
_ZERO_VEC: Vec = (_ZERO_IV,) * _N_EFFECTS


def _iv_add(a: Interval, b: Interval) -> Interval:
    return (min(a[0] + b[0], MANY), min(a[1] + b[1], MANY))


def _iv_join(a: Interval, b: Interval) -> Interval:
    return (min(a[0], b[0]), max(a[1], b[1]))


def _vec_add(a: Vec, b: Vec) -> Vec:
    if b is _ZERO_VEC:
        return a
    return tuple(_iv_add(x, y) for x, y in zip(a, b))


def _vec_join(a: Vec, b: Vec) -> Vec:
    return tuple(_iv_join(x, y) for x, y in zip(a, b))


def _vec_of(*pairs: tuple[int, Interval]) -> Vec:
    out = list(_ZERO_VEC)
    for idx, iv in pairs:
        out[idx] = iv
    return tuple(out)


# ----------------------------------------------------------------------
# the contract surface
# ----------------------------------------------------------------------

#: primitives and masked seams: these functions are the *definition* of
#: an effect (or a deliberately opaque boundary), so their bodies are not
#: analyzed and their summaries are fixed.  ``_run_one`` is the scheduler
#: execution seam: statically effect-free to match the auditor, which
#: suspends counting while it runs (see the module docstring).
_FIXED_SUMMARIES: dict[str, Vec] = {
    "sim/disk.py::SimDisk.read": _vec_of((_DR, _ONE_IV)),
    "sim/disk.py::SimDisk.write": _vec_of((_DW, _ONE_IV)),
    "sim/clock.py::SimClock.charge_cpu": _vec_of((_CPU, _ONE_IV)),
    "sim/clock.py::SimClock.charge_background": _vec_of((_BG, _ONE_IV)),
    "sim/runtime.py::BackgroundScheduler._run_one": _ZERO_VEC,
}

#: receiver field/name tokens typed to project classes: ``self.<token>.m()``
#: (or ``<token>.m()`` / ``self.<token>[i].m()``) resolves to ``C.m`` for
#: each candidate class ``C``; multiple candidates join.  Curated, not
#: inferred — additions belong here when a new charging chain must be
#: visible to the summaries (DESIGN.md §12 lists the residual blind spots).
_RECEIVER_TYPES: dict[str, tuple[str, ...]] = {
    "index": ("IndeXY",),
    "store": ("LSMStore",),
    "_store": ("LSMStore",),
    "memtable": ("MemTable",),
    "_memtable": ("MemTable",),
    "table": ("SSTable",),
    "tbl": ("SSTable",),
    "sstable": ("SSTable",),
    "precleaner": ("PreCleaner",),
    "budget": ("MemoryBudget",),
    "rebalancer": ("Rebalancer",),
    "heat": ("ShardHeat",),
    "scheduler": ("BackgroundScheduler",),
    "_scheduler": ("BackgroundScheduler",),
    "x": ("ARTIndexX", "BPlusIndexX"),
    "y": ("LSMStore", "DiskBPlusTree"),
    "_tree": ("AdaptiveRadixTree", "BPlusTree"),
    "tree": ("AdaptiveRadixTree", "BPlusTree"),
    "shard": ("ArtLsmSystem", "ArtBPlusSystem", "BPlusBPlusSystem", "RocksDbLikeSystem"),
    "shards": ("ArtLsmSystem", "ArtBPlusSystem", "BPlusBPlusSystem", "RocksDbLikeSystem"),
    "engine": ("ArtLsmSystem", "ArtBPlusSystem", "BPlusBPlusSystem", "RocksDbLikeSystem"),
}

#: per-package overrides where one token names different types per layer.
_RECEIVER_TYPES_BY_PREFIX: dict[str, dict[str, tuple[str, ...]]] = {
    "diskbtree/": {"pool": ("BufferPool",), "_pool": ("BufferPool",)},
    "systems/": {"pool": ("BufferPool",), "_pool": ("BufferPool",)},
}

#: receiver tokens that are plain data containers/counters: method calls
#: on them never charge (dict/list/stats buses), so they do not poison
#: the completeness bit.
_CHARGE_FREE_RECEIVERS = frozenset(
    {
        "_frames",
        "_blobs",
        "_decoded",
        "stats",
        "_stats",
        "_rng",
        "_policy",
        "_row_cache",
        "_block_cache",
        "_holders",
        "_mins",
        "queue",
        "_queue",
        "levels",
        "_pins",
        "_claims",
    }
)

#: builtins (and stdlib names used at module scope) whose calls are
#: charge-free by construction.
_BUILTIN_NAMES = frozenset(
    {
        "len",
        "isinstance",
        "issubclass",
        "bytes",
        "bytearray",
        "memoryview",
        "sorted",
        "min",
        "max",
        "sum",
        "abs",
        "round",
        "any",
        "all",
        "enumerate",
        "range",
        "zip",
        "map",
        "filter",
        "list",
        "dict",
        "set",
        "frozenset",
        "tuple",
        "repr",
        "str",
        "int",
        "float",
        "bool",
        "iter",
        "next",
        "hasattr",
        "getattr",
        "setattr",
        "id",
        "hash",
        "print",
        "type",
        "super",
        "vars",
        "divmod",
        "ord",
        "chr",
        "bisect_left",
        "bisect_right",
        "insort",
        "heappush",
        "heappop",
        "heapify",
        "heapreplace",
        "merge",
        "partial",
        "deque",
        "defaultdict",
        "Counter",
        "OrderedDict",
        "namedtuple",
        "ValueError",
        "TypeError",
        "KeyError",
        "RuntimeError",
        "NotImplementedError",
        "StopIteration",
        "AssertionError",
    }
)

#: identifier fragments that mark a branch test as a recognized cache-hit
#: (or filter) predicate: a zero-charge fast path through such a test is
#: the *point* of the cache, not a completeness bug (RL301).
_CACHE_HIT_TOKENS = (
    "cache",
    "frames",
    "frame",
    "bloom",
    "may_contain",
    "memtable",
    "hit",
    "cached",
    "_blocks",
    "_decoded",
    "min_key",
    "max_key",
)

#: foreground verb names on KVSystem subclasses (RL303 roots) — the
#: user-facing surface whose charges land on ``cpu_ns``.
_FG_VERBS = frozenset(
    {
        "insert",
        "read",
        "update",
        "delete",
        "scan",
        "put_many",
        "get_many",
        "delete_many",
        "read_modify_write",
    }
)


# ----------------------------------------------------------------------
# per-function model
# ----------------------------------------------------------------------


@dataclass
class _ElemInfo:
    """Charge-relevant facts about one CFG element."""

    bid: int
    index: int
    node: Element
    const: Vec  # direct primitive contributions
    callees: tuple[str, ...]  # confidently resolved project callees
    unresolved: tuple[str, ...]  # names of calls that did not resolve
    cpu_sites: tuple[ast.Call, ...]  # unambiguous charge_cpu call sites
    bg_sites: tuple[ast.Call, ...]  # unambiguous charge_background sites


@dataclass
class _FuncCharge:
    """One analyzed function: CFG + element facts + declared contract."""

    key: str
    info: FunctionInfo
    module: _Module
    cfg: CFG
    declared: Optional[dict[str, Interval]]
    elems: list[_ElemInfo]
    register_runners: list[str]  # maintenance runner keys registered here

    def callee_keys(self) -> set[str]:
        out: set[str] = set()
        for elem in self.elems:
            out.update(elem.callees)
        return out


@dataclass(frozen=True)
class ChargeSummary:
    """The inferred charge behaviour of one function.

    ``effects`` maps each effect name to its ``[lo, hi]`` count interval
    over all paths entry -> exit; ``complete`` is False when an
    unresolved call could hide additional charges (the upper bounds are
    then untrustworthy; the lower bounds always hold for the paths the
    analysis can see).
    """

    key: str
    effects: dict[str, Interval]
    complete: bool
    declared: Optional[dict[str, Interval]]

    def interval(self, effect: str) -> Interval:
        return self.effects.get(effect, _ZERO_IV)


@dataclass
class ChargeAnalysis:
    """Everything the lint driver and the runtime auditor consume."""

    graph: CallGraph
    summaries: dict[str, ChargeSummary]

    def summary_for(self, class_name: str, method: str) -> Optional[ChargeSummary]:
        key = self.graph.resolve_method(class_name, method)
        if key is None:
            return None
        return self.summaries.get(key)


# ----------------------------------------------------------------------
# declaration + primitive extraction
# ----------------------------------------------------------------------


def _declared_contract(func: ast.AST) -> Optional[dict[str, Interval]]:
    """Parse an ``@charges(...)`` decorator syntactically (no imports)."""
    from repro.sim.effects import parse_effect

    for dec in getattr(func, "decorator_list", []):
        if not isinstance(dec, ast.Call):
            continue
        name = None
        if isinstance(dec.func, ast.Name):
            name = dec.func.id
        elif isinstance(dec.func, ast.Attribute):
            name = dec.func.attr
        if name != "charges":
            continue
        contract: dict[str, Interval] = {}
        for arg in dec.args:
            if not isinstance(arg, ast.Constant) or not isinstance(arg.value, str):
                return None  # malformed declarations verify nothing
            try:
                effect, interval = parse_effect(arg.value)
            except ValueError:
                return None
            contract[effect] = interval
        return contract
    return None


def _alias_chains(func: ast.AST) -> dict[str, tuple[str, ...]]:
    """Local ``name = a.b.c`` / ``name = partial(a.b.c, ...)`` bindings.

    Flow-insensitive, like the call graph's ``_bound_aliases``: a later
    bare call through the name is treated as a call through the chain.
    """
    out: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(func):  # type: ignore[arg-type]
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value: ast.expr = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "partial"
            and value.args
        ):
            value = value.args[0]
        if isinstance(value, ast.Attribute):
            chain = _attr_chain(value)
            if chain is not None and len(chain) >= 2:
                out[target.id] = tuple(chain)
    return out


def _call_target_chain(
    call: ast.Call, aliases: dict[str, tuple[str, ...]]
) -> Optional[tuple[str, ...]]:
    """The attribute chain a call invokes, through local aliases."""
    func = call.func
    if isinstance(func, ast.Name):
        return aliases.get(func.id)
    if isinstance(func, ast.Attribute):
        chain = _attr_chain(func)
        return tuple(chain) if chain is not None else None
    return None


def _primitive_vec(call: ast.Call, aliases: dict[str, tuple[str, ...]]) -> Optional[Vec]:
    """Direct effect of a charge-primitive call site, or None.

    Recognizes clock charges by their project-unique method names
    (including through local bound aliases, ``charge = clock.charge_cpu``),
    disk I/O by a ``disk``/``_disk`` receiver token, and the ART
    ``_charge_fn`` stored callable as *ambiguous* cpu-or-background
    (``[0,1]`` each) — the dual-mode seam resolved at construction time.
    """
    chain = _call_target_chain(call, aliases)
    if chain is None:
        return None
    attr = chain[-1]
    if attr == "charge_cpu":
        return _vec_of((_CPU, _ONE_IV))
    if attr == "charge_background":
        return _vec_of((_BG, _ONE_IV))
    if attr == "_charge_fn":
        return _vec_of((_CPU, _MAYBE_IV), (_BG, _MAYBE_IV))
    if attr in ("read", "write") and len(chain) >= 2:
        recv = chain[-2]
        if recv in ("disk", "_disk"):
            idx = _DR if attr == "read" else _DW
            return _vec_of((idx, _ONE_IV))
    return None


def _unambiguous_site(
    call: ast.Call, aliases: dict[str, tuple[str, ...]]
) -> Optional[str]:
    """``"cpu"``/``"bg"`` when the call is a definite clock charge."""
    chain = _call_target_chain(call, aliases)
    if chain is None:
        return None
    if chain[-1] == "charge_cpu":
        return "cpu"
    if chain[-1] == "charge_background":
        return "bg"
    return None


# ----------------------------------------------------------------------
# call resolution (confident edges only)
# ----------------------------------------------------------------------


class _Resolver:
    """Resolve one function's call sites to project callees.

    Returns, per call, either a list of candidate keys (possibly empty =
    known charge-free) or ``None`` (unresolved: contributes nothing and
    may flip the completeness bit).
    """

    def __init__(
        self,
        graph: CallGraph,
        info: FunctionInfo,
        imported: dict[str, str],
        aliases: dict[str, tuple[str, ...]],
    ) -> None:
        self.graph = graph
        self.info = info
        self.imported = imported
        self.aliases = aliases
        prefix = info.rel.split("/", 1)[0] + "/"
        self._receiver_types = dict(_RECEIVER_TYPES)
        self._receiver_types.update(_RECEIVER_TYPES_BY_PREFIX.get(prefix, {}))

    def resolve(self, call: ast.Call) -> Optional[list[str]]:
        func = call.func
        if isinstance(func, ast.Name):
            chain = self.aliases.get(func.id)
            if chain is not None:
                return self._resolve_chain(chain)
            return self._resolve_name(func.id)
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            if chain is None:
                # Look through one subscript: ``self.shards[sid].read(k)``.
                base = func.value
                if isinstance(base, ast.Subscript):
                    inner = _attr_chain(base.value)
                    if inner is not None:
                        return self._resolve_chain((*inner, func.attr))
                return None
            return self._resolve_chain(tuple(chain))
        return None

    def _resolve_name(self, name: str) -> Optional[list[str]]:
        graph = self.graph
        if name in _BUILTIN_NAMES:
            return []
        direct = f"{self.info.rel}::{name}"
        if direct in graph.functions:
            return [direct]
        if self.info.class_name:
            nested = graph.resolve_method(self.info.class_name, name)
            if nested is not None:
                return [nested]
        target = self.imported.get(name)
        if target is not None:
            hits = [
                key
                for key in graph.by_name.get(target, [])
                if "." not in key.split("::")[1]
            ]
            if hits:
                return hits
        init = graph.resolve_method(name, "__init__")
        if init is not None:
            return [init]
        if name[:1].isupper():
            return []  # non-project class/exception constructor
        return None

    def _resolve_chain(self, chain: tuple[str, ...]) -> Optional[list[str]]:
        graph = self.graph
        attr = chain[-1]
        if chain[0] in ("self", "cls") and len(chain) == 2:
            if self.info.class_name:
                found = graph.resolve_method(self.info.class_name, attr)
                if found is not None:
                    return [found]
            return None  # a stored callable attribute, not a method
        token = chain[-2] if len(chain) >= 2 else None
        if token is not None:
            if token in _CHARGE_FREE_RECEIVERS:
                return []
            classes = self._receiver_types.get(token)
            if classes is None and token[:1].isupper():
                classes = (token,)  # classmethod call: ``SSTable.build(...)``
            if classes is not None:
                keys = [
                    key
                    for key in (graph.resolve_method(c, attr) for c in classes)
                    if key is not None
                ]
                if keys:
                    return keys
        candidates = [
            key
            for key in graph.by_name.get(attr, [])
            if graph.functions[key].class_name is not None
        ]
        if len(candidates) == 1:
            return candidates
        return None


def _call_display_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return "<dynamic>"


# ----------------------------------------------------------------------
# building the per-function model
# ----------------------------------------------------------------------


def _iter_element_calls(elem: Element) -> Iterable[ast.Call]:
    for expr in _use_exprs(elem):
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                yield node


def _runner_key(
    graph: CallGraph, info: FunctionInfo, arg: ast.expr
) -> Optional[str]:
    """Resolve a runner argument of ``scheduler.register(...)`` to a key."""
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Name)
        and arg.func.id == "partial"
        and arg.args
    ):
        arg = arg.args[0]
    chain = _attr_chain(arg)
    if chain is None:
        return None
    method = chain[-1]
    if chain[0] in ("self", "cls") and len(chain) == 2 and info.class_name:
        return graph.resolve_method(info.class_name, method)
    candidates = [
        key
        for key in graph.by_name.get(method, [])
        if graph.functions[key].class_name is not None
    ]
    if len(candidates) == 1:
        return candidates[0]
    return None


def _build_func_charge(
    graph: CallGraph,
    info: FunctionInfo,
    module: _Module,
    imported: dict[str, str],
) -> _FuncCharge:
    aliases = _alias_chains(info.node)
    resolver = _Resolver(graph, info, imported, aliases)
    cfg = build_cfg(info.node)
    elems: list[_ElemInfo] = []
    runners: list[str] = []
    for block in cfg.blocks:
        for index, elem in enumerate(block.elements):
            const = _ZERO_VEC
            callees: list[str] = []
            unresolved: list[str] = []
            cpu_sites: list[ast.Call] = []
            bg_sites: list[ast.Call] = []
            for call in _iter_element_calls(elem):
                prim = _primitive_vec(call, aliases)
                if prim is not None:
                    const = _vec_add(const, prim)
                    site = _unambiguous_site(call, aliases)
                    if site == "cpu":
                        cpu_sites.append(call)
                    elif site == "bg":
                        bg_sites.append(call)
                    continue
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "register"
                ):
                    for arg in [*call.args, *(kw.value for kw in call.keywords)]:
                        key = _runner_key(graph, info, arg)
                        if key is not None:
                            runners.append(key)
                resolved = resolver.resolve(call)
                if resolved is None:
                    unresolved.append(_call_display_name(call))
                else:
                    callees.extend(resolved)
            if (
                const is not _ZERO_VEC
                or callees
                or unresolved
                or cpu_sites
                or bg_sites
            ):
                elems.append(
                    _ElemInfo(
                        block.bid,
                        index,
                        elem,
                        const,
                        tuple(callees),
                        tuple(unresolved),
                        tuple(cpu_sites),
                        tuple(bg_sites),
                    )
                )
    return _FuncCharge(
        info.key,
        info,
        module,
        cfg,
        _declared_contract(info.node),
        elems,
        runners,
    )


# ----------------------------------------------------------------------
# the interprocedural fixpoint
# ----------------------------------------------------------------------


def _elem_vec(elem: _ElemInfo, vec_of: dict[str, Vec]) -> Vec:
    out = elem.const
    for callee in elem.callees:
        out = _vec_add(out, vec_of.get(callee, _ZERO_VEC))
    return out


def _intra_summary(
    fa: _FuncCharge, vec_of: dict[str, Vec]
) -> tuple[Vec, dict[int, Vec]]:
    """Forward interval dataflow over one CFG.

    Returns the entry->exit effect vector and the per-block *in* vectors
    (used by the rule checkers for localization).  Join is interval
    union; sequencing is saturating interval addition; back edges
    saturate loop-carried counts at ``MANY``, so the lattice is finite
    and the worklist terminates.
    """
    cfg = fa.cfg
    block_vec: dict[int, Vec] = {}
    for elem in fa.elems:
        vec = _elem_vec(elem, vec_of)
        if vec is not _ZERO_VEC:
            prev = block_vec.get(elem.bid, _ZERO_VEC)
            block_vec[elem.bid] = _vec_add(prev, vec)
    in_vec: dict[int, Vec] = {cfg.entry.bid: _ZERO_VEC}
    work = [cfg.entry]
    while work:
        block = work.pop()
        out = _vec_add(
            in_vec.get(block.bid, _ZERO_VEC), block_vec.get(block.bid, _ZERO_VEC)
        )
        for succ in block.succ:
            have = in_vec.get(succ.bid)
            new = out if have is None else _vec_join(have, out)
            if new != have:
                in_vec[succ.bid] = new
                work.append(succ)
    return in_vec.get(cfg.exit.bid, _ZERO_VEC), in_vec


def _compute_summaries(
    analyses: dict[str, _FuncCharge]
) -> dict[str, Vec]:
    """Bottom-up effect summaries to a global fixpoint.

    Summaries start at zero and only grow (both ``_vec_add`` and
    ``_vec_join`` are monotone), so the ascending chain over the finite
    interval lattice converges; plain round-robin iteration reaches the
    fixpoint in O(call-graph depth) rounds.
    """
    vec_of: dict[str, Vec] = dict(_FIXED_SUMMARIES)
    for key in analyses:
        vec_of.setdefault(key, _ZERO_VEC)
    changed = True
    while changed:
        changed = False
        for key, fa in analyses.items():
            if key in _FIXED_SUMMARIES:
                continue
            new, _ = _intra_summary(fa, vec_of)
            if new != vec_of[key]:
                vec_of[key] = new
                changed = True
    return vec_of


def _is_abstract_stub(node: Element) -> bool:
    """A body that is only ``raise NotImplementedError`` (after a docstring).

    Calls resolving to such a stub actually dispatch to some override at
    runtime, so they must not count as a complete zero-effect callee.
    """
    body = list(getattr(node, "body", []))
    stmts = [
        stmt
        for stmt in body
        if not (isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant))
    ]
    if len(stmts) != 1 or not isinstance(stmts[0], ast.Raise):
        return False
    exc = stmts[0].exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"


def _compute_completeness(
    analyses: dict[str, _FuncCharge], vec_of: dict[str, Vec]
) -> dict[str, bool]:
    """True when a function's upper bounds are trustworthy.

    A summary is *incomplete* when the function (or anything it
    confidently calls) contains an unresolved call whose name matches
    some project function that charges — that call could invoke it, so
    the inferred ``hi`` may be an undercount.  Unresolved names that no
    charging function bears (``append``, ``bump``, thunk invocations)
    cannot add charges and stay complete.  A call resolving to an
    abstract ``raise NotImplementedError`` stub is likewise incomplete:
    the runtime target is whatever override dynamic dispatch picks.
    """
    charging_names = {"charge_cpu", "charge_background", "read", "write"}
    for key, vec in vec_of.items():
        if any(iv != _ZERO_IV for iv in vec):
            name = key.split("::")[1].rsplit(".", 1)[-1]
            charging_names.add(name)
    abstract = {
        key for key, fa in analyses.items() if _is_abstract_stub(fa.info.node)
    }
    own_ok = {
        key: all(
            name not in charging_names
            for elem in fa.elems
            for name in elem.unresolved
        )
        and not (fa.callee_keys() & abstract)
        for key, fa in analyses.items()
    }
    complete = dict(own_ok)
    changed = True
    while changed:
        changed = False
        for key, fa in analyses.items():
            if not complete[key]:
                continue
            for callee in fa.callee_keys():
                if callee in _FIXED_SUMMARIES:
                    continue
                if not complete.get(callee, True):
                    complete[key] = False
                    changed = True
                    break
    return complete


# ----------------------------------------------------------------------
# rule checkers
# ----------------------------------------------------------------------


def _declared_vec(declared: dict[str, Interval]) -> Vec:
    return tuple(declared.get(name, _ZERO_IV) for name in EFFECT_NAMES)


def _first_charging_elem(
    fa: _FuncCharge, vec_of: dict[str, Vec], effect: int
) -> Element:
    best: Element = fa.info.node
    best_line = 10**9
    for elem in fa.elems:
        if _elem_vec(elem, vec_of)[effect][1] > 0:
            line = getattr(elem.node, "lineno", 10**9)
            if line < best_line:
                best_line = line
                best = elem.node
    return best


def _test_mentions_cache(elem: Element) -> bool:
    if not isinstance(elem, ast.expr):
        return False
    for node in ast.walk(elem):
        ident = None
        if isinstance(node, ast.Name):
            ident = node.id
        elif isinstance(node, ast.Attribute):
            ident = node.attr
        if ident is not None:
            lowered = ident.lower()
            if any(token in lowered for token in _CACHE_HIT_TOKENS):
                return True
    return False


def _zero_path_is_cache_guarded(
    fa: _FuncCharge, vec_of: dict[str, Vec], effect: int
) -> bool:
    """True when every zero-charge path crosses a cache-hit predicate."""
    cfg = fa.cfg
    definite = set()
    for elem in fa.elems:
        if _elem_vec(elem, vec_of)[effect][0] >= 1:
            definite.add(elem.bid)
    if not cfg.reachable(cfg.entry, cfg.exit, avoid=frozenset(definite)):
        return True  # no zero path at all (lo dipped via a loop join)
    guards = set()
    for block in cfg.blocks:
        if any(_test_mentions_cache(e) for e in block.elements):
            guards.add(block.bid)
    return not cfg.reachable(
        cfg.entry, cfg.exit, avoid=frozenset(definite | guards)
    )


def _check_contracts(
    fa: _FuncCharge,
    vec_of: dict[str, Vec],
    active: frozenset[str],
    sink: _Sink,
) -> None:
    """RL301 + RL302 for one declared function."""
    declared = fa.declared
    assert declared is not None
    inferred, in_vec = _intra_summary(fa, vec_of)
    d_vec = _declared_vec(declared)
    for idx, name in enumerate(EFFECT_NAMES):
        d_lo, d_hi = d_vec[idx]
        i_lo, i_hi = inferred[idx]
        if "RL301" in active:
            if i_hi > 0 and d_hi == 0:
                sink.add(
                    fa.module.path,
                    _first_charging_elem(fa, vec_of, idx),
                    "RL301",
                    f"{fa.info.name}() charges undeclared effect {name}; "
                    "declare it in @charges(...) or remove the charge",
                )
            if i_hi == 0 and d_hi > 0:
                sink.add(
                    fa.module.path,
                    fa.info.node,
                    "RL301",
                    f"{fa.info.name}() declares {name} but no analyzable "
                    "path charges it; fix the declaration or the body",
                )
            if d_lo >= 1 and 0 < i_hi and i_lo < d_lo:
                if not _zero_path_is_cache_guarded(fa, vec_of, idx):
                    sink.add(
                        fa.module.path,
                        fa.info.node,
                        "RL301",
                        f"{fa.info.name}() declares {name} on every path but "
                        "a path reaches exit without charging it (and no "
                        "recognized cache-hit guard covers the fast path)",
                    )
        if "RL302" in active and d_hi > 0 and d_hi < MANY and i_hi > d_hi:
            culprit: Element = fa.info.node
            # ``before`` = block-entry counts plus earlier charges in the
            # same block, so the finding lands on the charge that tips
            # the count over the declaration, not on the function header.
            acc: dict[int, Interval] = {}
            for elem in fa.elems:
                contrib = _elem_vec(elem, vec_of)[idx]
                base = in_vec.get(elem.bid, _ZERO_VEC)[idx]
                before = _iv_add(base, acc.get(elem.bid, _ZERO_IV))
                if contrib[1] > 0 and (
                    before[1] >= d_hi or contrib[1] > d_hi
                ):
                    culprit = elem.node
                    break
                acc[elem.bid] = _iv_add(acc.get(elem.bid, _ZERO_IV), contrib)
            sink.add(
                fa.module.path,
                culprit,
                "RL302",
                f"{fa.info.name}() may charge {name} up to "
                f"{'many' if i_hi >= MANY else i_hi} times on one path but "
                f"declares at most {d_hi}; a double charge here skews every "
                "simulated result this function touches",
            )


def _is_kvsystem_class(graph: CallGraph, class_name: str) -> bool:
    seen: set[str] = set()
    stack = [class_name]
    while stack:
        cls = stack.pop()
        if cls in seen:
            continue
        seen.add(cls)
        if cls == "KVSystem":
            return True
        stack.extend(graph._bases.get(cls, []))
    return False


def _check_buckets(
    analyses: dict[str, _FuncCharge],
    graph: CallGraph,
    sink: _Sink,
) -> None:
    """RL303: foreground/background bucket confusion via reachability."""

    def sweep(
        roots: list[str],
        offending: str,
        message: str,
    ) -> None:
        parent: dict[str, Optional[str]] = {key: None for key in roots}
        queue = list(roots)
        reported: set[tuple[str, int]] = set()
        while queue:
            key = queue.pop(0)
            fa = analyses.get(key)
            if fa is None:
                continue
            sites = []
            for elem in fa.elems:
                sites.extend(
                    elem.bg_sites if offending == "bg_charge" else elem.cpu_sites
                )
            declared = fa.declared or {}
            if sites and offending not in declared:
                chain = [fa.info.name]
                walk: Optional[str] = key
                while parent.get(walk) is not None:
                    walk = parent[walk]
                    assert walk is not None
                    chain.append(analyses[walk].info.name)
                chain.reverse()
                path_str = " -> ".join(chain)
                for site in sites:
                    loc = (fa.info.rel, getattr(site, "lineno", 1))
                    if loc in reported:
                        continue
                    reported.add(loc)
                    sink.add(
                        fa.module.path,
                        site,
                        "RL303",
                        f"{message} (inline chain: {path_str}); declare the "
                        f"effect with @charges(...) if this accounting is "
                        "deliberate, or move the charge to the right bucket",
                    )
            for callee in fa.callee_keys():
                if callee not in parent and callee in analyses:
                    parent[callee] = key
                    queue.append(callee)

    fg_roots = sorted(
        key
        for key, fa in analyses.items()
        if fa.info.class_name
        and fa.info.name in _FG_VERBS
        and _is_kvsystem_class(graph, fa.info.class_name)
    )
    sweep(
        fg_roots,
        "bg_charge",
        "background_ns charged on a path reachable from a foreground verb",
    )
    maint_roots = sorted(
        {runner for fa in analyses.values() for runner in fa.register_runners}
    )
    sweep(
        maint_roots,
        "cpu_charge",
        "foreground cpu_ns charged on a path reachable from a "
        "scheduler-registered maintenance runner",
    )


def _element_mutations(elem: Element) -> bool:
    """Self-rooted state mutation: attribute/subscript store or delete."""

    def rooted_at_self(node: ast.expr) -> bool:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    targets: list[ast.expr] = []
    if isinstance(elem, ast.Assign):
        targets = list(elem.targets)
    elif isinstance(elem, (ast.AugAssign, ast.AnnAssign)):
        targets = [elem.target]
    elif isinstance(elem, ast.Delete):
        targets = list(elem.targets)
    for target in targets:
        if isinstance(target, (ast.Attribute, ast.Subscript)) and rooted_at_self(
            target
        ):
            return True
    return False


def _check_exception_skew(
    fa: _FuncCharge, vec_of: dict[str, Vec], sink: _Sink
) -> None:
    """RL304 for one function (pre-filtered to raise+charge+mutation)."""
    cfg = fa.cfg
    charge_bids = frozenset(
        elem.bid
        for elem in fa.elems
        if any(iv[1] > 0 for iv in _elem_vec(elem, vec_of))
    )
    mutation_elems: list[tuple[int, Element]] = []
    raise_bids: set[int] = set()
    for block in cfg.blocks:
        for elem in block.elements:
            if isinstance(elem, ast.Raise):
                raise_bids.add(block.bid)
            if _element_mutations(elem):
                mutation_elems.append((block.bid, elem))
    if not charge_bids or not mutation_elems or not raise_bids:
        return
    mutation_bids = frozenset(bid for bid, _ in mutation_elems)
    blocks = {b.bid: b for b in cfg.blocks}

    def escapes(start: int, avoid: frozenset[int]) -> Optional[int]:
        """A raise block reachable from ``start`` without crossing ``avoid``."""
        for rb in raise_bids:
            if rb == start:
                continue
            if cfg.reachable(blocks[start], blocks[rb], avoid=avoid):
                return rb
        return None

    def pairs_downstream(start: int, targets: frozenset[int]) -> bool:
        return any(
            cfg.reachable(blocks[start], blocks[t], avoid=frozenset())
            for t in targets
            if t != start
        )

    reported: set[int] = set()
    # Mutation escapes before its paired charge.
    for bid, elem in mutation_elems:
        if bid in charge_bids:
            continue  # mutation and charge share a block: atomic enough
        if not pairs_downstream(bid, charge_bids):
            continue  # no charge follows this mutation; nothing is paired
        rb = escapes(bid, charge_bids)
        if rb is None:
            continue
        line = getattr(elem, "lineno", 1)
        if line in reported:
            continue
        reported.add(line)
        sink.add(
            fa.module.path,
            elem,
            "RL304",
            f"state mutation in {fa.info.name}() can escape via the raise "
            "path before its paired charge executes; charge first, mutate "
            "after, or make the raise precede both",
        )
    # Charge escapes before its paired mutation.
    for elem_info in fa.elems:
        vec = _elem_vec(elem_info, vec_of)
        if not any(iv[1] > 0 for iv in vec):
            continue
        bid = elem_info.bid
        if bid in mutation_bids:
            continue
        if not pairs_downstream(bid, mutation_bids):
            continue
        rb = escapes(bid, mutation_bids)
        if rb is None:
            continue
        line = getattr(elem_info.node, "lineno", 1)
        if line in reported:
            continue
        reported.add(line)
        sink.add(
            fa.module.path,
            elem_info.node,
            "RL304",
            f"charge in {fa.info.name}() can escape via the raise path "
            "before its paired state mutation executes; the account and "
            "the structure would disagree after the exception",
        )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def _in_scope(rel: str) -> bool:
    return rel.startswith(_SCOPE_PREFIXES)


def _build_analyses(
    modules: list[_Module],
) -> tuple[CallGraph, dict[str, _FuncCharge]]:
    scoped = [m for m in modules if _in_scope(m.rel)]
    trees = {m.rel: m.tree for m in scoped}
    graph = build_callgraph(trees)
    imports: dict[str, dict[str, str]] = {}
    for module in scoped:
        local: dict[str, str] = {}
        for node in module.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local[alias.asname or alias.name] = alias.name
        imports[module.rel] = local
    by_rel = {m.rel: m for m in scoped}
    analyses: dict[str, _FuncCharge] = {}
    for key, info in graph.functions.items():
        if key in _FIXED_SUMMARIES:
            continue
        module = by_rel.get(info.rel)
        if module is None:
            continue
        analyses[key] = _build_func_charge(
            graph, info, module, imports.get(info.rel, {})
        )
    return graph, analyses


def _analyze_modules(modules: list[_Module]) -> ChargeAnalysis:
    graph, analyses = _build_analyses(modules)
    vec_of = _compute_summaries(analyses)
    complete = _compute_completeness(analyses, vec_of)
    summaries: dict[str, ChargeSummary] = {}
    for key, vec in vec_of.items():
        fa = analyses.get(key)
        effects = {
            name: vec[idx]
            for idx, name in enumerate(EFFECT_NAMES)
            if vec[idx] != _ZERO_IV
        }
        summaries[key] = ChargeSummary(
            key,
            effects,
            complete.get(key, key in _FIXED_SUMMARIES),
            fa.declared if fa is not None else None,
        )
    return ChargeAnalysis(graph, summaries)


def analyze_sources(files: dict[str, tuple[str, str]]) -> ChargeAnalysis:
    """Charge summaries for ``rel -> (display path, source)`` (RL305 API)."""
    return _analyze_modules(_parse_modules(files))


def analyze_paths(paths: Sequence[str | Path]) -> ChargeAnalysis:
    """Charge summaries for files/directories (tests excluded)."""
    return analyze_sources(_load_files(paths))


def charge_lint_sources(
    files: dict[str, tuple[str, str]],
    rules: Optional[Iterable[str]] = None,
    *,
    apply_pragmas: bool = True,
) -> list[Finding]:
    """Run RL301–RL304 over ``rel -> (display path, source)``.

    ``rules`` restricts the run to a subset of RL3xx ids;
    ``apply_pragmas=False`` keeps suppressed findings (stale-pragma audit).
    """
    active = (
        frozenset(rules)
        if rules is not None
        else frozenset(r.rule_id for r in CHARGE_RULES)
    )
    modules = _parse_modules(files)
    sink = _Sink()
    if active & {"RL301", "RL302", "RL303", "RL304"}:
        graph, analyses = _build_analyses(modules)
        vec_of = _compute_summaries(analyses)
        if active & {"RL301", "RL302"}:
            for fa in analyses.values():
                if fa.declared is not None:
                    _check_contracts(fa, vec_of, active, sink)
        if "RL303" in active:
            _check_buckets(analyses, graph, sink)
        if "RL304" in active:
            for fa in analyses.values():
                if fa.info.rel.startswith(_SKEW_PREFIXES) and fa.info.name not in (
                    "__init__",
                    "__new__",
                ):
                    _check_exception_skew(fa, vec_of, sink)
    raw = sorted(sink.raw, key=lambda f: (f.path, f.line, f.col, f.rule))
    if not apply_pragmas:
        return raw
    lines_by_path = {m.path: m.source.splitlines() for m in modules}
    return filter_findings(raw, lines_by_path)


def _load_files(paths: Sequence[str | Path]) -> dict[str, tuple[str, str]]:
    files: dict[str, tuple[str, str]] = {}
    for entry in paths:
        path = Path(entry)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            if "tests" in file.parts or file.suffix != ".py":
                continue
            files[module_rel_path(file)] = (
                str(file),
                file.read_text(encoding="utf-8"),
            )
    return files


def charge_lint_paths(
    paths: Sequence[str | Path],
    rules: Optional[Iterable[str]] = None,
    *,
    apply_pragmas: bool = True,
) -> list[Finding]:
    """Run the charge rules over files/directories (tests excluded)."""
    return charge_lint_sources(_load_files(paths), rules, apply_pragmas=apply_pragmas)
