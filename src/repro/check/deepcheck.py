"""Deep static contract analysis (the RL1xx rule family).

Where :mod:`repro.check.reprolint` matches single AST nodes, the rules
here prove (or refute) properties that span control-flow paths and call
chains, using the :mod:`~repro.check.cfg` /
:mod:`~repro.check.dataflow` / :mod:`~repro.check.callgraph` substrate:

=======  ==============================================================
RL101    transitive-inline-background: no foreground entry point
         (``insert``/``get``/``put``/``delete``/``scan``/...) may reach a
         maintenance routine through any inline call chain; maintenance
         runs only via the ``BackgroundScheduler`` seam.  Upgrades RL003
         from direct-call matching to call-graph reachability.
RL102    determinism-taint: values derived from ``id()``, ``hash()``,
         ``os`` process state, or set iteration order must not flow into
         simulated-time charges (``charge_cpu``/``charge_background``),
         RNG seeds, or persisted counters (``bump``/``record_max``/
         ``json.dump``) — simulated runs are bit-deterministic by
         contract.
RL103    paired-mutation: every CFG path that performs an accounting
         mutation (a dirty-bit flip, a buffer-pool frame-map change, a
         foreground-CPU re-book, an ART D-bit set) also executes its
         paired bookkeeping update before function exit.
RL104    transitive-hot-alloc: loop bodies in the hot packages must not
         call helpers that *unconditionally* allocate containers (or pay
         a function-local import).  Extends RL007 one call level deep
         through the project call graph.
=======  ==============================================================

Soundness limits (see DESIGN.md §5d for the full discussion): the call
graph is name-based and over-approximate (duck resolution), so RL101/
RL104 may flag chains no concrete receiver ever executes — suppress with
a justified pragma.  RL102 taint is intra-procedural: taint entering
through a parameter or return value is not tracked.  RL103 treats a
two-argument ``dict.pop`` as a mutation even when the key is absent.
Suppression uses the same per-line ``# reprolint: allow[RL1xx]`` pragma
as the shallow rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

from repro.check.callgraph import (
    CallGraph,
    _attr_chain,
    build_callgraph,
)
from repro.check.cfg import CFG, Block, FunctionNode, build_cfg, iter_function_defs
from repro.check.dataflow import (
    Definition,
    ReachingDefs,
    def_use_chains,
    element_uses,
)
from repro.check.reprolint import (
    _MAINTENANCE_OWNERS,
    Finding,
    Rule,
    filter_findings,
    module_rel_path,
)

__all__ = ["DEEP_RULES", "deep_lint_sources", "deep_lint_paths"]

DEEP_RULES: tuple[Rule, ...] = (
    Rule(
        "RL101",
        "transitive-inline-background",
        "no inline call chain from a foreground entry point to a maintenance routine",
        scope="foreground entry points -> maintenance owners (call graph)",
    ),
    Rule(
        "RL102",
        "determinism-taint",
        "id()/hash()/set-order/env values must not reach clock charges, seeds, or results",
        scope="src/repro (tests excluded)",
    ),
    Rule(
        "RL103",
        "paired-mutation",
        "accounting mutations execute their paired bookkeeping update on every path",
        scope="paired accounting fields (curated table)",
    ),
    Rule(
        "RL104",
        "transitive-hot-alloc",
        "hot-path loops must not call unconditionally-allocating helpers",
        scope="hot modules (art/ lsm/ sim/ diskbtree/)",
    ),
)

#: method names that constitute the foreground (user-facing) surface; any
#: project function with one of these names seeds RL101's reachability.
_ENTRY_NAMES = frozenset(
    {
        "insert",
        "get",
        "search",
        "delete",
        "scan",
        "put",
        "put_batch",
        "put_many",
        "get_many",
        "update",
        "remove",
        "lookup",
    }
)

#: the maintenance routines (shared with RL003's owner table).
_MAINTENANCE_NAMES = frozenset(_MAINTENANCE_OWNERS)

#: hot packages policed by RL104 (same set as RL007).
_HOT_PREFIXES = ("art/", "lsm/", "sim/", "diskbtree/")

# ----------------------------------------------------------------------
# shared plumbing
# ----------------------------------------------------------------------


@dataclass
class _Module:
    rel: str
    path: str  # display path for findings
    source: str
    tree: ast.Module


class _Sink:
    """Accumulates raw findings for one run."""

    def __init__(self) -> None:
        self.raw: list[Finding] = []

    def add(self, path: str, node: ast.AST, rule: str, message: str) -> None:
        self.raw.append(
            Finding(
                path,
                getattr(node, "lineno", 1),
                getattr(node, "col_offset", 0),
                rule,
                message,
            )
        )


def _parse_modules(files: dict[str, tuple[str, str]]) -> list[_Module]:
    modules: list[_Module] = []
    for rel, (path, source) in sorted(files.items()):
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # the shallow pass reports RL000 for unparseable files
        modules.append(_Module(rel, path, source, tree))
    return modules


# ----------------------------------------------------------------------
# RL101: transitive inline-background
# ----------------------------------------------------------------------


def _rule_inline_background(
    graph: CallGraph, display: dict[str, str], sink: _Sink
) -> None:
    roots = sorted(
        key for key, info in graph.functions.items() if info.name in _ENTRY_NAMES
    )
    parent: dict[str, Optional[str]] = {key: None for key in roots}
    queue = list(roots)
    reported: set[tuple[str, int, int]] = set()
    while queue:
        key = queue.pop(0)
        for site in graph.callees(key):
            callee = graph.functions[site.callee]
            if callee.name in _MAINTENANCE_NAMES:
                caller = graph.functions[key]
                loc = (
                    caller.rel,
                    getattr(site.call, "lineno", 1),
                    getattr(site.call, "col_offset", 0),
                )
                if loc in reported:
                    continue
                reported.add(loc)
                chain = [graph.functions[key].name]
                walk: Optional[str] = key
                while parent.get(walk) is not None:
                    walk = parent[walk]
                    assert walk is not None
                    chain.append(graph.functions[walk].name)
                chain.reverse()
                path_str = " -> ".join(chain + [callee.name])
                sink.add(
                    display.get(caller.rel, caller.rel),
                    site.call,
                    "RL101",
                    f"maintenance routine {callee.name}() is reachable inline from "
                    f"foreground entry point {chain[0]}() ({path_str}); route the "
                    "work through the BackgroundScheduler",
                )
                continue  # findings stop the traversal at the routine
            if site.callee not in parent:
                parent[site.callee] = key
                queue.append(site.callee)


# ----------------------------------------------------------------------
# RL102: determinism taint
# ----------------------------------------------------------------------

_TAINT_SOURCE_FUNCS = frozenset({"id", "hash"})
#: taint-killing pures: their result does not expose identity or order.
_TAINT_SANITIZERS = frozenset({"sorted", "len", "min", "max", "sum", "any", "all", "bool"})
#: order-preserving converters: propagate set-order taint into sequences.
_ORDER_PRESERVING = frozenset({"list", "tuple", "iter", "reversed", "enumerate"})
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})
#: comparisons whose result is deterministic even over tainted operands
#: (identity values are stable within one run; membership/equality does
#: not observe ordering).
_SAFE_COMPARE_OPS = (ast.In, ast.NotIn, ast.Is, ast.IsNot, ast.Eq, ast.NotEq)
_CLOCK_SINKS = frozenset({"charge_cpu", "charge_background"})
_STAT_SINKS = frozenset({"bump", "record_max"})
#: process-state reads that differ across identical runs.  ``os.path.*``
#: string helpers are deliberately absent: a file *location* may vary by
#: machine without breaking result determinism; file *content* may not.
_OS_STATE_SOURCES = frozenset(
    {
        ("os", "environ"),
        ("os", "environb"),
        ("os", "getenv"),
        ("os", "getenvb"),
        ("os", "urandom"),
        ("os", "getpid"),
        ("os", "times"),
        ("os", "cpu_count"),
        ("os", "stat"),
    }
)


class _TaintAnalysis:
    """Intra-procedural fixpoint over one function's definitions."""

    def __init__(self, func: FunctionNode) -> None:
        self.cfg = build_cfg(func)
        reaching = ReachingDefs(self.cfg)
        self.use_defs: dict[int, frozenset[Definition]] = {
            id(use.name): use.defs for use in def_use_chains(self.cfg, reaching)
        }
        self.set_defs: set[Definition] = set()
        self.tainted: set[Definition] = set()
        self._all_defs: list[Definition] = [
            d for defs in reaching.defs_of.values() for d in defs
        ]
        self._fixpoint()

    # -- set-typedness -------------------------------------------------
    def _expr_is_set(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            if expr.func.id in _SET_CONSTRUCTORS:
                return True
        if isinstance(expr, ast.Name):
            defs = self.use_defs.get(id(expr), frozenset())
            return any(d in self.set_defs for d in defs)
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._expr_is_set(expr.left) or self._expr_is_set(expr.right)
        return False

    # -- taint ---------------------------------------------------------
    def expr_tainted(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Constant):
            return False
        if isinstance(expr, ast.Name):
            defs = self.use_defs.get(id(expr), frozenset())
            return any(d in self.tainted for d in defs)
        if isinstance(expr, ast.Compare):
            if all(isinstance(op, _SAFE_COMPARE_OPS) for op in expr.ops):
                return False
            return any(
                self.expr_tainted(operand)
                for operand in [expr.left, *expr.comparators]
            )
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in _TAINT_SOURCE_FUNCS:
                    return True
                if func.id in _TAINT_SANITIZERS:
                    return False
                if func.id in _ORDER_PRESERVING:
                    return any(
                        self.expr_tainted(arg) or self._expr_is_set(arg)
                        for arg in expr.args
                    )
            if isinstance(func, ast.Attribute):
                chain = _attr_chain(func)
                if chain is not None and tuple(chain[:2]) in _OS_STATE_SOURCES:
                    return True
            args: list[ast.expr] = list(expr.args)
            args.extend(kw.value for kw in expr.keywords)
            if isinstance(func, ast.Attribute):
                args.append(func.value)  # tainted receiver taints the result
            return any(self.expr_tainted(arg) for arg in args)
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain is not None and tuple(chain[:2]) in _OS_STATE_SOURCES:
                return True
            return self.expr_tainted(expr.value)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            sub: list[ast.expr] = []
            if isinstance(expr, ast.DictComp):
                sub.extend([expr.key, expr.value])
            else:
                sub.append(expr.elt)
            for gen in expr.generators:
                if self.expr_tainted(gen.iter) or (
                    not isinstance(expr, ast.SetComp) and self._expr_is_set(gen.iter)
                ):
                    return True
                sub.extend(gen.ifs)
            return any(self.expr_tainted(s) for s in sub)
        return any(
            self.expr_tainted(child)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )

    def _def_tainted(self, definition: Definition) -> bool:
        value = definition.value
        if value is None:
            return False
        elem = definition.element
        if isinstance(elem, (ast.For, ast.AsyncFor)):
            # Iterating a set observes hash order.
            if self._expr_is_set(value):
                return True
            return self.expr_tainted(value)
        if isinstance(elem, ast.AugAssign) and isinstance(elem.target, ast.Name):
            # x += e keeps x's previous taint.
            for name in element_uses(elem):
                if name.id == elem.target.id:
                    defs = self.use_defs.get(id(name), frozenset())
                    if any(d in self.tainted for d in defs):
                        return True
        return self.expr_tainted(value)

    def _fixpoint(self) -> None:
        changed = True
        while changed:
            changed = False
            for definition in self._all_defs:
                value = definition.value
                if value is None:
                    continue
                if definition not in self.set_defs and self._expr_is_set(value):
                    self.set_defs.add(definition)
                    changed = True
                if definition not in self.tainted and self._def_tainted(definition):
                    self.tainted.add(definition)
                    changed = True


def _iter_element_calls(cfg: CFG) -> Iterable[ast.Call]:
    from repro.check.dataflow import _use_exprs  # shared element shapes

    for block in cfg.blocks:
        for elem in block.elements:
            for expr in _use_exprs(elem):
                for node in ast.walk(expr):
                    if isinstance(node, ast.Call):
                        yield node


def _rule_determinism(module: _Module, func: FunctionNode, sink: _Sink) -> None:
    analysis = _TaintAnalysis(func)
    if not analysis.tainted:
        return
    for call in _iter_element_calls(analysis.cfg):
        func_expr = call.func
        name = None
        chain = None
        if isinstance(func_expr, ast.Name):
            name = func_expr.id
        elif isinstance(func_expr, ast.Attribute):
            name = func_expr.attr
            chain = _attr_chain(func_expr)
        if name is None:
            continue
        args = list(call.args) + [kw.value for kw in call.keywords]
        if not args:
            continue
        tainted_arg = next((a for a in args if analysis.expr_tainted(a)), None)
        if tainted_arg is None:
            continue
        if name in _CLOCK_SINKS:
            sink.add(
                module.path,
                call,
                "RL102",
                f"non-deterministic value flows into {name}(); simulated-time "
                "charges must be bit-reproducible",
            )
        elif name == "Random" or name == "seed":
            sink.add(
                module.path,
                call,
                "RL102",
                f"non-deterministic value seeds {name}(); runs must reproduce",
            )
        elif name in _STAT_SINKS:
            sink.add(
                module.path,
                call,
                "RL102",
                f"non-deterministic value flows into stats.{name}(); counters "
                "are persisted with results and must be reproducible",
            )
        elif (
            chain is not None
            and chain[0] == "json"
            and name in ("dump", "dumps")
            and call.args
            and analysis.expr_tainted(call.args[0])  # the payload, not the file
        ):
            sink.add(
                module.path,
                call,
                "RL102",
                "non-deterministic value is persisted via json; results must be "
                "byte-identical across runs",
            )


# ----------------------------------------------------------------------
# RL103: paired mutations
# ----------------------------------------------------------------------


def _assign_attr_literal(elem: ast.AST, attr: str, values: tuple[object, ...]) -> bool:
    if not isinstance(elem, ast.Assign):
        return False
    if not isinstance(elem.value, ast.Constant) or elem.value.value not in values:
        return False
    return any(
        isinstance(t, ast.Attribute) and t.attr == attr for t in elem.targets
    )


def _writes_attr(elem: ast.AST, attr: str) -> bool:
    if isinstance(elem, ast.Assign):
        return any(
            isinstance(t, ast.Attribute) and t.attr == attr for t in elem.targets
        )
    if isinstance(elem, ast.AugAssign):
        return isinstance(elem.target, ast.Attribute) and elem.target.attr == attr
    return False


def _calls_method_on(elem: ast.AST, attr: str, methods: frozenset[str]) -> bool:
    for node in ast.walk(elem):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in methods and isinstance(node.func.value, ast.Attribute):
                if node.func.value.attr == attr:
                    return True
    return False


_LIST_MUTATORS = frozenset({"append", "remove", "insert", "pop", "clear", "extend"})


def _mutates_subscript_of(elem: ast.AST, attr: str) -> bool:
    targets: list[ast.expr] = []
    if isinstance(elem, ast.Assign):
        targets = list(elem.targets)
    elif isinstance(elem, ast.Delete):
        targets = list(elem.targets)
    for target in targets:
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute) and base.attr == attr:
                return True
            if isinstance(base, ast.Name) and base.id == attr:
                return True
    return False


def _frames_mutation(elem: ast.AST) -> bool:
    return _mutates_subscript_of(elem, "_frames") or _calls_method_on(
        elem, "_frames", frozenset({"pop", "popitem", "clear", "setdefault"})
    )


def _policy_notification(elem: ast.AST) -> bool:
    return _calls_method_on(
        elem, "_policy", frozenset({"on_insert", "on_remove", "reset"})
    )


@dataclass(frozen=True)
class MutationPair:
    """One paired-accounting contract checked by RL103."""

    pair_id: str
    modules: tuple[str, ...]  # rel prefixes the pair binds
    exclude: tuple[str, ...]
    trigger: Callable[[ast.AST], bool]
    required: Callable[[ast.AST], bool]
    message: str


_PAIRS: tuple[MutationPair, ...] = (
    MutationPair(
        "dirty-bit/_dirty_count",
        ("diskbtree/",),
        (),
        lambda e: _assign_attr_literal(e, "dirty", (True, False)),
        lambda e: _writes_attr(e, "_dirty_count"),
        "a dirty-bit flip must update the _dirty_count mirror on every path "
        "to exit (the proactive write-back trigger reads it)",
    ),
    MutationPair(
        "_frames/_policy",
        ("diskbtree/",),
        (),
        _frames_mutation,
        _policy_notification,
        "a frame-map mutation must notify the eviction policy (on_insert / "
        "on_remove) on every path to exit",
    ),
    MutationPair(
        "cpu_ns/background_ns",
        ("",),  # everywhere ...
        ("sim/clock.py",),  # ... except the clock itself
        lambda e: _writes_attr(e, "cpu_ns"),
        lambda e: _writes_attr(e, "background_ns"),
        "a foreground-CPU re-book outside SimClock must write the "
        "background account on the same path (time is conserved)",
    ),
    MutationPair(
        "art-dirty/activity",
        ("art/",),
        (),
        lambda e: _assign_attr_literal(e, "dirty", (True,)),
        lambda e: _writes_attr(e, "activity"),
        "setting an ART node's D bit must also set its activity bit (the "
        "check-back protocol reads both)",
    ),
)


def _rule_paired_mutation(module: _Module, func: FunctionNode, sink: _Sink) -> None:
    if func.name in ("__init__", "__new__"):
        # Constructors initialize fields on an object no registry knows
        # about yet; accounting starts when the object is admitted.
        return
    pairs = [
        p
        for p in _PAIRS
        if module.rel.startswith(p.modules) and not module.rel.startswith(p.exclude)
    ]
    if not pairs:
        return
    cfg: CFG | None = None
    for pair in pairs:
        # Cheap pre-scan before building the CFG.
        has_trigger = any(pair.trigger(node) for node in ast.walk(func))
        if not has_trigger:
            continue
        if cfg is None:
            cfg = build_cfg(func)
        required_bids = frozenset(
            block.bid
            for block in cfg.blocks
            if any(pair.required(elem) for elem in block.elements)
        )
        for block in cfg.blocks:
            for elem in block.elements:
                if not pair.trigger(elem):
                    continue
                if block.bid in required_bids:
                    continue  # paired within the same basic block
                to_exit = cfg.reachable(block, cfg.exit, avoid=required_bids)
                from_entry = cfg.reachable(
                    block, cfg.entry, avoid=required_bids, forward=False
                )
                if to_exit and from_entry:
                    sink.add(
                        module.path,
                        elem,
                        "RL103",
                        f"unpaired accounting mutation ({pair.pair_id}): "
                        f"{pair.message}",
                    )


# ----------------------------------------------------------------------
# RL104: transitive hot-path allocation
# ----------------------------------------------------------------------

_ALLOCATOR_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "Counter", "defaultdict", "OrderedDict"}
)
_ALLOC_DISPLAYS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _unconditional_allocation(func: FunctionNode) -> ast.AST | None:
    """An allocation (or local import) every call of ``func`` must pay.

    Only the function body's top-level simple statements count — anything
    under a branch, loop, or try is conditional and the caller may never
    hit it.
    """
    for stmt in func.body:
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            return stmt
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign, ast.Expr, ast.Return)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, _ALLOC_DISPLAYS):
                return node
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _ALLOCATOR_CALLS
            ):
                return node
    return None


class _LoopCallCollector(ast.NodeVisitor):
    """In-loop call sites of one function (same loop model as RL007)."""

    def __init__(self) -> None:
        self.calls: list[ast.Call] = []
        self._depth = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs are separate functions

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def _loop(self, node: ast.For | ast.AsyncFor) -> None:
        self.visit(node.iter)  # the iterator expression runs once
        self._depth += 1
        self.visit(node.target)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._loop(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self._depth > 0:
            self.calls.append(node)
        self.generic_visit(node)


def _rule_hot_alloc(
    graph: CallGraph, modules: dict[str, _Module], sink: _Sink
) -> None:
    for key, info in graph.functions.items():
        if not info.rel.startswith(_HOT_PREFIXES):
            continue
        if info.name in _MAINTENANCE_NAMES:
            # Maintenance routines are background batch work; their loops
            # allocate by design (merge outputs, flush batches).  RL104
            # protects the foreground hot path.
            continue
        module = modules.get(info.rel)
        if module is None:
            continue
        collector = _LoopCallCollector()
        for stmt in info.node.body:
            collector.visit(stmt)
        if not collector.calls:
            continue
        resolved: dict[int, list[str]] = {}
        for site in graph.callees(key):
            resolved.setdefault(id(site.call), []).append(site.callee)
        for call in collector.calls:
            func_expr = call.func
            plain_name = isinstance(func_expr, ast.Name)
            self_method = (
                isinstance(func_expr, ast.Attribute)
                and isinstance(func_expr.value, ast.Name)
                and func_expr.value.id in ("self", "cls")
            )
            if not plain_name and not self_method:
                continue  # longer chains are RL007's (shallow) business
            for callee_key in resolved.get(id(call), ()):
                callee = graph.functions[callee_key]
                if callee.name in ("__init__", "__new__") or callee_key == key:
                    continue
                alloc = _unconditional_allocation(callee.node)
                if alloc is None:
                    continue
                what = (
                    "a function-local import"
                    if isinstance(alloc, (ast.Import, ast.ImportFrom))
                    else "an unconditional allocation"
                )
                sink.add(
                    module.path,
                    call,
                    "RL104",
                    f"loop body calls {callee.name}() which pays {what} "
                    f"({callee.rel}:{getattr(alloc, 'lineno', '?')}) on every "
                    "iteration; hoist the work or restructure the helper",
                )
                break  # one finding per call site is enough


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def deep_lint_sources(
    files: dict[str, tuple[str, str]],
    rules: Optional[Iterable[str]] = None,
    *,
    apply_pragmas: bool = True,
) -> list[Finding]:
    """Run the deep rules over ``rel -> (display path, source)``.

    ``rules`` restricts the run to a subset of RL1xx ids (used by the
    fixture tests to prove each rule pulls its weight);
    ``apply_pragmas=False`` keeps suppressed findings (stale-pragma audit).
    """
    active = frozenset(rules) if rules is not None else frozenset(r.rule_id for r in DEEP_RULES)
    modules = _parse_modules(files)
    by_rel = {m.rel: m for m in modules}
    display = {m.rel: m.path for m in modules}
    trees = {m.rel: m.tree for m in modules}
    graph = build_callgraph(trees)
    sink = _Sink()

    if "RL101" in active:
        _rule_inline_background(graph, display, sink)
    if "RL104" in active:
        _rule_hot_alloc(graph, by_rel, sink)
    if "RL102" in active or "RL103" in active:
        for module in modules:
            for _cls, func in iter_function_defs(module.tree):
                if "RL102" in active:
                    _rule_determinism(module, func, sink)
                if "RL103" in active:
                    _rule_paired_mutation(module, func, sink)

    raw = sorted(sink.raw, key=lambda f: (f.path, f.line, f.col, f.rule))
    if not apply_pragmas:
        return raw
    # Pragma suppression, shared grammar with the shallow rules.
    lines_by_path: dict[str, list[str]] = {
        m.path: m.source.splitlines() for m in modules
    }
    return filter_findings(raw, lines_by_path)


def deep_lint_paths(
    paths: Sequence[str | Path],
    rules: Optional[Iterable[str]] = None,
    *,
    apply_pragmas: bool = True,
) -> list[Finding]:
    """Run the deep rules over files/directories (tests excluded)."""
    files: dict[str, tuple[str, str]] = {}
    for entry in paths:
        path = Path(entry)
        candidates = (
            sorted(path.rglob("*.py")) if path.is_dir() else [path]
        )
        for file in candidates:
            if "tests" in file.parts or file.suffix != ".py":
                continue
            files[module_rel_path(file)] = (str(file), file.read_text(encoding="utf-8"))
    return deep_lint_sources(files, rules, apply_pragmas=apply_pragmas)
