"""Intra-procedural control-flow graphs over Python ASTs.

The deep checker (:mod:`repro.check.deepcheck`) needs to reason about
*paths* — "does every path that sets a dirty bit also bump the mirror
counter before the function returns?" — which per-node AST matching
(:mod:`repro.check.reprolint`) cannot express.  This module builds a
classic basic-block CFG for one function at a time.

Model
-----

A :class:`Block` holds an ordered list of *elements*.  An element is
either a simple statement (``ast.Assign``, ``ast.Expr``, ...) or the
decision expression of a compound statement (the ``test`` of an
``if``/``while``).  ``for`` loops contribute the ``ast.For`` node itself
as the loop-head element (its per-iteration target binding), and ``with``
statements contribute the ``ast.With`` node (its ``as`` bindings); the
bodies of compound statements are *never* stored inside an element — they
become their own blocks — so dataflow can walk elements without
double-counting nested code.  :func:`repro.check.dataflow.element_defs`
and :func:`~repro.check.dataflow.element_uses` know how to read each
element shape.

Soundness limits (documented, deliberate)
-----------------------------------------

* ``try`` bodies get an exception edge from *every* block the body
  creates to each handler entry (an exception can fire anywhere), which
  over-approximates; ``finally`` bodies are modelled on the normal-exit
  path only.
* ``return``/``raise`` edges go straight to the exit block even when a
  ``finally`` would intervene.
* ``assert`` adds a failure edge to the exit block.
* Calls are assumed not to raise (no exception edge per call site);
  the deep rules that need exception paths treat ``try`` conservatively
  as above.
"""

from __future__ import annotations

import ast
from typing import Union

__all__ = ["Element", "Block", "CFG", "build_cfg", "iter_function_defs"]

#: One unit of straight-line code inside a block; see the module docstring
#: for which AST node stands for which compound construct.
Element = Union[ast.stmt, ast.expr, ast.ExceptHandler]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: simple statements that flow straight through a block.
_LINEAR_STMTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Pass,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.Delete,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


class Block:
    """One basic block: straight-line elements plus successor edges."""

    __slots__ = ("bid", "elements", "succ", "pred")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.elements: list[Element] = []
        self.succ: list[Block] = []
        self.pred: list[Block] = []

    def add_succ(self, other: "Block") -> None:
        if other not in self.succ:
            self.succ.append(other)
            other.pred.append(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(e).__name__ for e in self.elements)
        return f"Block(#{self.bid}, [{kinds}], ->{[b.bid for b in self.succ]})"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: list[Block] = []
        entry = self.new_block()
        exit_block = self.new_block()
        self.entry = entry
        self.exit = exit_block

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def reachable(
        self,
        start: Block,
        goal: Block,
        avoid: frozenset[int] = frozenset(),
        forward: bool = True,
    ) -> bool:
        """True when ``goal`` is reachable from ``start`` without entering
        any block whose id is in ``avoid`` (``start`` itself is exempt so a
        block can reach onward even when it is in the avoid set)."""
        if start is goal:
            return True
        seen = {start.bid}
        stack = [start]
        while stack:
            here = stack.pop()
            for nxt in here.succ if forward else here.pred:
                if nxt is goal:
                    return True
                if nxt.bid in seen or nxt.bid in avoid:
                    continue
                seen.add(nxt.bid)
                stack.append(nxt)
        return False

    def describe(self) -> str:
        """A stable, human-diffable rendering used by the golden tests."""
        lines = []
        for block in self.blocks:
            tag = ""
            if block is self.entry:
                tag = " entry"
            elif block is self.exit:
                tag = " exit"
            kinds = ",".join(_element_tag(e) for e in block.elements)
            succ = ",".join(str(b.bid) for b in block.succ)
            lines.append(f"#{block.bid}{tag}: [{kinds}] -> [{succ}]")
        return "\n".join(lines)


def _element_tag(elem: Element) -> str:
    if isinstance(elem, ast.expr):
        return f"test:{type(elem).__name__}"
    return type(elem).__name__


class _Builder:
    """Recursive-descent CFG construction with break/continue stacks."""

    def __init__(self, func: FunctionNode) -> None:
        self.cfg = CFG(func)
        #: (continue-target, break-target) per enclosing loop.
        self._loops: list[tuple[Block, Block]] = []
        #: handler-entry blocks of enclosing ``try`` statements; blocks
        #: created under a try body get an edge to each.
        self._handlers: list[list[Block]] = []

    def build(self) -> CFG:
        body_entry = self.cfg.new_block()
        self.cfg.entry.add_succ(body_entry)
        tail = self._stmts(self.cfg.func.body, body_entry)
        if tail is not None:
            tail.add_succ(self.cfg.exit)  # implicit ``return None``
        return self.cfg

    # ------------------------------------------------------------------
    def _new_block(self) -> Block:
        block = self.cfg.new_block()
        # An exception can transfer control out of any block inside a try
        # body; over-approximate with one edge per enclosing handler.
        for handlers in self._handlers:
            for handler in handlers:
                block.add_succ(handler)
        return block

    def _stmts(self, stmts: list[ast.stmt], current: Block) -> Block | None:
        """Thread ``stmts`` from ``current``; returns the fall-through
        block, or None when every path terminated (return/raise/...)."""
        out: Block | None = current
        for stmt in stmts:
            if out is None:
                break  # unreachable code after a terminator
            out = self._stmt(stmt, out)
        return out

    def _stmt(self, stmt: ast.stmt, current: Block) -> Block | None:
        if isinstance(stmt, _LINEAR_STMTS):
            current.elements.append(stmt)
            return current
        if isinstance(stmt, ast.Return):
            current.elements.append(stmt)
            current.add_succ(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Raise):
            current.elements.append(stmt)
            if self._handlers:
                for handler in self._handlers[-1]:
                    current.add_succ(handler)
            else:
                current.add_succ(self.cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            current.elements.append(stmt)
            if self._loops:
                current.add_succ(self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            current.elements.append(stmt)
            if self._loops:
                current.add_succ(self._loops[-1][0])
            return None
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.elements.append(stmt)
            return self._stmts(stmt.body, current)
        if isinstance(stmt, ast.Assert):
            current.elements.append(stmt)
            after = self._new_block()
            current.add_succ(after)
            current.add_succ(self.cfg.exit)  # assertion failure raises
            return after
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        # Unknown statement kind: treat as linear (conservative).
        current.elements.append(stmt)
        return current

    def _if(self, stmt: ast.If, current: Block) -> Block | None:
        current.elements.append(stmt.test)
        after: Block | None = None

        def join(tail: Block | None) -> None:
            nonlocal after
            if tail is not None:
                if after is None:
                    after = self._new_block()
                tail.add_succ(after)

        then_entry = self._new_block()
        current.add_succ(then_entry)
        join(self._stmts(stmt.body, then_entry))
        if stmt.orelse:
            else_entry = self._new_block()
            current.add_succ(else_entry)
            join(self._stmts(stmt.orelse, else_entry))
        else:
            join(current)
        return after

    def _while(self, stmt: ast.While, current: Block) -> Block | None:
        head = self._new_block()
        head.elements.append(stmt.test)
        current.add_succ(head)
        after = self._new_block()
        body_entry = self._new_block()
        head.add_succ(body_entry)
        self._loops.append((head, after))
        tail = self._stmts(stmt.body, body_entry)
        self._loops.pop()
        if tail is not None:
            tail.add_succ(head)
        if stmt.orelse:
            else_entry = self._new_block()
            head.add_succ(else_entry)
            else_tail = self._stmts(stmt.orelse, else_entry)
            if else_tail is not None:
                else_tail.add_succ(after)
        else:
            head.add_succ(after)
        return after

    def _for(self, stmt: ast.For | ast.AsyncFor, current: Block) -> Block | None:
        head = self._new_block()
        head.elements.append(stmt)  # the For node: target def + iter use
        current.add_succ(head)
        after = self._new_block()
        body_entry = self._new_block()
        head.add_succ(body_entry)
        self._loops.append((head, after))
        tail = self._stmts(stmt.body, body_entry)
        self._loops.pop()
        if tail is not None:
            tail.add_succ(head)
        if stmt.orelse:
            else_entry = self._new_block()
            head.add_succ(else_entry)
            else_tail = self._stmts(stmt.orelse, else_entry)
            if else_tail is not None:
                else_tail.add_succ(after)
        else:
            head.add_succ(after)
        return after

    def _try(self, stmt: ast.Try, current: Block) -> Block | None:
        handler_entries: list[Block] = []
        for handler in stmt.handlers:
            entry = self._new_block()
            entry.elements.append(handler)  # defines ``except ... as name``
            handler_entries.append(entry)

        # Push the handler stack *before* creating the body entry so the
        # first body block also gets its exception edge.
        self._handlers.append(handler_entries)
        body_entry = self._new_block()
        current.add_succ(body_entry)
        body_tail = self._stmts(stmt.body, body_entry)
        self._handlers.pop()

        tails: list[Block] = []
        if body_tail is not None:
            if stmt.orelse:
                body_tail = self._stmts(stmt.orelse, body_tail)
            if body_tail is not None:
                tails.append(body_tail)
        for handler, entry in zip(stmt.handlers, handler_entries, strict=True):
            handler_tail = self._stmts(handler.body, entry)
            if handler_tail is not None:
                tails.append(handler_tail)
        if not tails:
            if stmt.finalbody:
                # All paths terminated but the finally still runs; model it
                # as dead-end straight-line code so its defs exist.
                final_entry = self._new_block()
                self._stmts(stmt.finalbody, final_entry)
            return None
        after = self._new_block()
        for tail in tails:
            tail.add_succ(after)
        if stmt.finalbody:
            return self._stmts(stmt.finalbody, after)
        return after

    def _match(self, stmt: ast.Match, current: Block) -> Block | None:
        current.elements.append(stmt.subject)
        after: Block | None = None
        for case in stmt.cases:
            case_entry = self._new_block()
            current.add_succ(case_entry)
            tail = self._stmts(case.body, case_entry)
            if tail is not None:
                if after is None:
                    after = self._new_block()
                tail.add_succ(after)
        if after is None:
            after = self._new_block()
        current.add_succ(after)  # no case matched
        return after


def build_cfg(func: FunctionNode) -> CFG:
    """Build the control-flow graph of one function definition."""
    return _Builder(func).build()


def iter_function_defs(tree: ast.AST) -> list[tuple[str | None, FunctionNode]]:
    """Every function in ``tree`` as ``(enclosing class name or None, node)``.

    Nested functions are attributed to the class of their enclosing method
    (closures stay part of the method's implementation for analysis).
    """
    out: list[tuple[str | None, FunctionNode]] = []

    def walk(node: ast.AST, cls: str | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append((cls, child))
                walk(child, cls)
            else:
                walk(child, cls)

    walk(tree, None)
    return out
