"""Escape/ownership analysis for the shard dispatch concurrency contract.

The sharded serving layer (:mod:`repro.shard.router`) is lock-free by
construction: batched operations are partitioned once on the calling
thread, dispatched once to :meth:`~repro.shard.pool.ShardWorkerPool.run`
(the *scatter barrier* — the only happens-before edge between worker
thunks and the foreground), and merged after the barrier.  That design is
only safe under an ownership discipline the code cannot express locally:

* each dispatched thunk may mutate state rooted at **exactly one** shard's
  engine (the one its shard id names);
* everything else a thunk can reach must be immutable, ``@shared_readonly``
  (read-only between partition and scatter), or fresh per-thunk data the
  foreground built while partitioning;
* no thunk result, stat, or clock charge may be read by the foreground
  before the barrier returns.

This module proves (or refutes) that discipline statically, on top of the
CFG / reaching-definitions / call-graph substrate.  It discovers dispatch
sites (``pool.run(...)`` calls and calls to *forwarders* — functions that
pass a parameter straight through to ``pool.run``, like the router's
``_dispatch`` seam), resolves the work list to its thunk expressions via
reaching definitions, classifies every value a thunk captures (shard
engine with a distinct index, shared-readonly object, substrate account,
fresh container, immutable, unknown), and walks bound ``self`` methods
interprocedurally to find writes the thunk would perform on foreground
state.

The rule split (reported by :mod:`repro.check.racecheck`):

=======  =============================================================
RL201    thread-escape: a thunk captures mutable foreground/router
         state (runtime, stats, clock, or any non-shard ``self``
         attribute it writes) — state that is not a single shard's
         engine and not proven immutable.
RL202    ownership-partition: two thunks may alias the same mutable
         root — a loop-invariant/constant shard index, or the whole
         shard container escaping into a thunk.
RL203    shared-read-immutability: a thunk (or a method it calls)
         writes an object whose class is ``@shared_readonly``.
=======  =============================================================

Soundness limits (deliberate, mirrored by the runtime oracle): the
analysis is scoped to ``shard/`` modules — the contract's domain — and
flags only *proven-dangerous* escapes.  Captures it cannot classify
(opaque parameters, values from unresolvable calls) are assumed
read-only; the :class:`~repro.check.sanitizer.OwnershipSanitizer`
cross-validates those at runtime with per-thunk ownership claims.
Thunks built by imperative ``append`` loops (rather than comprehensions
or list displays) are not resolved; the blessed dispatch seam only ever
builds comprehensions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.check.callgraph import CallGraph, _attr_chain
from repro.check.cfg import FunctionNode, build_cfg, iter_function_defs
from repro.check.dataflow import Definition, ReachingDefs

__all__ = [
    "ContractRegistry",
    "RaceFinding",
    "analyze_module",
    "build_registry",
]

_POOL_CLASS = "ShardWorkerPool"
#: per-engine simulated substrate attributes; mutating them from a thunk
#: that does not own the engine corrupts another shard's accounts.
_SUBSTRATE_ATTRS = frozenset({"runtime", "stats", "clock", "disk", "scheduler"})
#: mutators on the substrate objects above.
_SUBSTRATE_MUTATORS = frozenset(
    {
        "bump",
        "record_max",
        "charge_cpu",
        "charge_background",
        "merge",
        "reset",
        "restore",
        "install_owner_guard",
    }
)
#: container mutators (same set the shallow shard rules police).
_CONTAINER_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)
#: builtin constructors whose result is a fresh foreground container.
_FRESH_BUILTINS = frozenset({"list", "dict", "tuple", "sorted", "set"})

_MAX_WALK_DEPTH = 3


@dataclass(frozen=True)
class RaceFinding:
    """One raw finding, attributed to the module it occurred in."""

    rel: str
    node: ast.AST
    rule: str
    message: str


# ----------------------------------------------------------------------
# registry: project-wide contract facts
# ----------------------------------------------------------------------


@dataclass
class ContractRegistry:
    """Contract facts collected over the whole analyzed tree.

    ``shared_ro`` is the subclass closure of every ``@shared_readonly``
    class; ``distinct_fns`` the names of ``@distinct_ids`` functions
    (their return values iterate pairwise-distinct shard ids);
    ``attr_types`` maps ``class -> attr -> declared type`` (from
    ``self.x: T = ...`` annotations and ``self.x = ClassName(...)``
    constructor assignments); ``forwarders`` maps a function key to the
    ``(sids, work)`` argument positions its call sites dispatch through.
    """

    shared_ro: set[str] = field(default_factory=set)
    distinct_fns: set[str] = field(default_factory=set)
    attr_types: dict[str, dict[str, str]] = field(default_factory=dict)
    bases: dict[str, list[str]] = field(default_factory=dict)
    forwarders: dict[str, tuple[int, int]] = field(default_factory=dict)

    def attr_type(self, class_name: Optional[str], attr: str) -> Optional[str]:
        """Declared type of ``attr`` with a project-local MRO walk."""
        if class_name is None:
            return None
        seen: set[str] = set()
        stack = [class_name]
        while stack:
            cls = stack.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            found = self.attr_types.get(cls, {}).get(attr)
            if found is not None:
                return found
            stack.extend(self.bases.get(cls, []))
        return None

    def is_shared_ro_type(self, type_name: Optional[str]) -> bool:
        return type_name is not None and type_name in self.shared_ro

    def is_shard_container_type(self, type_name: Optional[str]) -> bool:
        return (
            type_name is not None
            and type_name.startswith("list[")
            and "KVSystem" in type_name
        )


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        chain = _attr_chain(target)
        if chain:
            names.add(chain[-1])
    return names


def _collect_attr_types(node: ast.ClassDef, into: dict[str, str]) -> None:
    """``self.x: T`` annotations and ``self.x = ClassName(...)`` assigns."""
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            into.setdefault(stmt.target.id, ast.unparse(stmt.annotation))
    for sub in ast.walk(node):
        if isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Attribute):
            chain = _attr_chain(sub.target)
            if chain is not None and len(chain) == 2 and chain[0] == "self":
                into.setdefault(chain[1], ast.unparse(sub.annotation))
        elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            chain = _attr_chain(target) if isinstance(target, ast.Attribute) else None
            if chain is None or len(chain) != 2 or chain[0] != "self":
                continue
            value = sub.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                into.setdefault(chain[1], value.func.id)


def build_registry(trees: dict[str, ast.Module], graph: CallGraph) -> ContractRegistry:
    """Collect the contract registry over ``rel path -> module AST``."""
    reg = ContractRegistry()
    for rel, tree in sorted(trees.items()):
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                bases = []
                for base in node.bases:
                    chain = _attr_chain(base)
                    if chain:
                        bases.append(chain[-1])
                reg.bases[node.name] = bases
                if "shared_readonly" in _decorator_names(node):
                    reg.shared_ro.add(node.name)
                _collect_attr_types(node, reg.attr_types.setdefault(node.name, {}))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if "distinct_ids" in _decorator_names(node):
                    reg.distinct_fns.add(node.name)
    # Subclass closure of the shared-readonly classes.
    changed = True
    while changed:
        changed = False
        for cls, bases in reg.bases.items():
            if cls not in reg.shared_ro and any(b in reg.shared_ro for b in bases):
                reg.shared_ro.add(cls)
                changed = True
    # Forwarders: a function whose pool.run argument is a bare parameter.
    for key, info in graph.functions.items():
        params = _param_names(info.node)
        ordered = _ordered_params(info.node)
        pool_names = _pool_annotated_params(info.node) | ({"pool"} & params)
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            if not _is_pool_run(node, info.class_name, reg, pool_names):
                continue
            work = node.args[0]
            if isinstance(work, ast.Name) and work.id in ordered:
                work_idx = ordered.index(work.id)
                # The sids argument precedes the work argument by seam
                # convention; fall back to the work index when absent.
                sids_idx = max(0, work_idx - 1)
                reg.forwarders[key] = (sids_idx, work_idx)
    return reg


def _ordered_params(func: FunctionNode) -> list[str]:
    """Positional parameter names, ``self``/``cls`` receiver excluded."""
    args = func.args
    out = [a.arg for a in (*args.posonlyargs, *args.args)]
    if out and out[0] in ("self", "cls"):
        out = out[1:]
    return out


def _param_names(func: FunctionNode) -> set[str]:
    args = func.args
    names = {a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def _pool_annotated_params(func: FunctionNode) -> set[str]:
    out: set[str] = set()
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is None:
            continue
        ann = ast.unparse(arg.annotation).strip("\"'")
        if _POOL_CLASS in ann:
            out.add(arg.arg)
    return out


def _is_pool_run(
    call: ast.Call,
    class_name: Optional[str],
    reg: ContractRegistry,
    pool_names: set[str],
) -> bool:
    """True when ``call`` is a scatter-barrier ``pool.run(...)`` call."""
    chain = _attr_chain(call.func)
    if chain is None or chain[-1] != "run" or len(chain) < 2:
        return False
    recv = chain[:-1]
    if recv[0] in ("self", "cls") and len(recv) == 2:
        return reg.attr_type(class_name, recv[1]) == _POOL_CLASS
    if len(recv) == 1:
        return recv[0] in pool_names
    return False


# ----------------------------------------------------------------------
# name resolution inside one function (reaching definitions)
# ----------------------------------------------------------------------


class _Scope:
    """Resolves ``Name`` loads to their reaching definitions.

    Anchoring works by locating the CFG element that (shallowly) contains
    an AST node; compound elements contribute only their decision /
    iterable parts, so a node inside a loop body anchors to its own
    element, never the loop head.
    """

    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.cfg = build_cfg(func)
        self.reaching = ReachingDefs(self.cfg)
        self.params = set(self.reaching.params)
        self._pos: dict[int, tuple[int, int]] = {}
        for block in self.cfg.blocks:
            for index, elem in enumerate(block.elements):
                for node in self._shallow_walk(elem):
                    self._pos.setdefault(id(node), (block.bid, index))

    @staticmethod
    def _shallow_walk(elem: ast.AST) -> Iterable[ast.AST]:
        if isinstance(elem, (ast.For, ast.AsyncFor)):
            yield elem
            yield from ast.walk(elem.target)
            yield from ast.walk(elem.iter)
            return
        if isinstance(elem, (ast.With, ast.AsyncWith)):
            yield elem
            for item in elem.items:
                yield from ast.walk(item)
            return
        yield from ast.walk(elem)

    def defs_at(self, name: str, anchor: ast.AST) -> list[Definition]:
        """Reaching definitions of ``name`` just before ``anchor``'s element."""
        pos = self._pos.get(id(anchor))
        if pos is None:
            return []
        block = self.cfg.blocks[pos[0]]
        live = self.reaching.reaching_at(block, pos[1])
        return [d for d in live.get(name, set()) if d.value is not None]

    def is_param(self, name: str) -> bool:
        return name in self.params


# ----------------------------------------------------------------------
# value classification
# ----------------------------------------------------------------------

#: classification tags, roughly ordered by how dangerous a capture is.
_TAG_SHARD = "shard"  # one engine, carries index distinctness
_TAG_SHARD_CONTAINER = "shard_container"
_TAG_SUBSTRATE = "substrate"
_TAG_SHARED_RO = "shared_ro"
_TAG_POOL = "pool"
_TAG_FRESH = "fresh"  # container the foreground built while partitioning
_TAG_FRESH_ITEM = "fresh_item"
_TAG_DISTINCT = "distinct"  # a per-thunk-distinct shard id
_TAG_IMMUTABLE = "immutable"
_TAG_PARAM = "param"
_TAG_UNKNOWN = "unknown"


@dataclass(frozen=True)
class _Kind:
    tag: str
    #: for _TAG_SHARD: "distinct" | "const" | "invariant" | "unknown"
    index: str = ""


_UNKNOWN = _Kind(_TAG_UNKNOWN)


class _SiteAnalysis:
    """Classifies values and thunks around one function's dispatch sites."""

    def __init__(
        self,
        rel: str,
        class_name: Optional[str],
        scope: _Scope,
        reg: ContractRegistry,
        graph: CallGraph,
        active: frozenset[str],
    ) -> None:
        self.rel = rel
        self.class_name = class_name
        self.scope = scope
        self.reg = reg
        self.graph = graph
        self.active = active
        self.findings: list[RaceFinding] = []

    def add(self, node: ast.AST, rule: str, message: str, rel: str | None = None) -> None:
        if rule in self.active:
            self.findings.append(RaceFinding(rel or self.rel, node, rule, message))

    # -- expression classification -------------------------------------
    def classify(
        self,
        expr: ast.expr,
        env: dict[str, _Kind],
        anchor: ast.AST,
        depth: int = 0,
    ) -> _Kind:
        if depth > 6:
            return _UNKNOWN
        if isinstance(expr, ast.Constant):
            return _Kind(_TAG_IMMUTABLE)
        if isinstance(expr, ast.Name):
            bound = env.get(expr.id)
            if bound is not None:
                return bound
            defs = self.scope.defs_at(expr.id, anchor)
            if not defs and self.scope.is_param(expr.id):
                return _Kind(_TAG_PARAM)
            kinds = [
                self.classify(d.value, env, d.value, depth + 1)
                for d in defs
                if d.value is not None
            ]
            return _strongest(kinds)
        if isinstance(expr, ast.Attribute):
            chain = _attr_chain(expr)
            if chain is not None and chain[0] in ("self", "cls"):
                if len(chain) >= 2 and chain[1] in _SUBSTRATE_ATTRS:
                    return _Kind(_TAG_SUBSTRATE)
                declared = self.reg.attr_type(self.class_name, chain[1])
                if self.reg.is_shared_ro_type(declared):
                    return _Kind(_TAG_SHARED_RO)
                if self.reg.is_shard_container_type(declared):
                    return _Kind(_TAG_SHARD_CONTAINER) if len(chain) == 2 else _UNKNOWN
                if declared == _POOL_CLASS:
                    return _Kind(_TAG_POOL)
            return _UNKNOWN
        if isinstance(expr, ast.Subscript):
            base = self.classify(expr.value, env, anchor, depth + 1)
            if base.tag == _TAG_SHARD_CONTAINER:
                return _Kind(_TAG_SHARD, self._index_distinctness(expr.slice, env, anchor))
            if base.tag in (_TAG_FRESH, _TAG_FRESH_ITEM):
                return _Kind(_TAG_FRESH_ITEM)
            return _UNKNOWN
        if isinstance(expr, ast.Call):
            return self._classify_call(expr, env, anchor, depth)
        if isinstance(expr, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return _Kind(_TAG_FRESH)
        if isinstance(expr, (ast.BinOp, ast.UnaryOp, ast.Compare, ast.JoinedStr)):
            return _Kind(_TAG_IMMUTABLE)
        return _UNKNOWN

    def _classify_call(
        self, call: ast.Call, env: dict[str, _Kind], anchor: ast.AST, depth: int
    ) -> _Kind:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in _FRESH_BUILTINS:
                return _Kind(_TAG_FRESH)
            if func.id == "range":
                return _Kind(_TAG_DISTINCT)
            return _UNKNOWN
        chain = _attr_chain(func)
        if chain is None:
            return _UNKNOWN
        if chain[-1] in self.reg.distinct_fns:
            return _Kind(_TAG_DISTINCT)
        recv = self.classify(func.value, env, anchor, depth + 1)
        if recv.tag == _TAG_SHARED_RO:
            # A read-only object's method result is foreground-fresh data
            # (split/split_indexed build new per-shard lists).
            return _Kind(_TAG_FRESH)
        return _UNKNOWN

    def _index_distinctness(
        self, index: ast.expr, env: dict[str, _Kind], anchor: ast.AST
    ) -> str:
        if isinstance(index, ast.Constant):
            return "const"
        names = [
            n.id
            for n in ast.walk(index)
            if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
        ]
        bound = [env[n] for n in names if n in env]
        if any(k.tag == _TAG_DISTINCT for k in bound):
            return "distinct"
        if env and not bound:
            # No comprehension target feeds the index: the same value on
            # every iteration, i.e. every thunk aliases one engine.
            return "invariant"
        if not env:
            # List-display context: distinctness is judged pairwise.
            return "literal"
        return "unknown"

    # -- distinct-sequence recognition ---------------------------------
    def is_distinct_seq(self, expr: ast.expr, anchor: ast.AST, depth: int = 0) -> bool:
        if depth > 4:
            return False
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, ast.Name) and expr.func.id == "range":
                return True
            chain = _attr_chain(expr.func)
            if chain is not None and chain[-1] in self.reg.distinct_fns:
                return True
            return False
        if isinstance(expr, ast.Name):
            return any(
                d.value is not None and self.is_distinct_seq(d.value, d.value, depth + 1)
                for d in self.scope.defs_at(expr.id, anchor)
            )
        if isinstance(expr, ast.ListComp) and len(expr.generators) == 1:
            gen = expr.generators[0]
            if not isinstance(expr.elt, ast.Name):
                return False
            first = _first_target_name(gen.target)
            it = gen.iter
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id == "enumerate"
            ):
                return first is not None and expr.elt.id == first
            if self.is_distinct_seq(it, anchor, depth + 1):
                target = gen.target
                return isinstance(target, ast.Name) and expr.elt.id == target.id
            return False
        return False


def _strongest(kinds: list[_Kind]) -> _Kind:
    """Most significant classification when several definitions reach."""
    order = (
        _TAG_SHARD_CONTAINER,
        _TAG_SUBSTRATE,
        _TAG_SHARED_RO,
        _TAG_SHARD,
        _TAG_POOL,
        _TAG_DISTINCT,
        _TAG_FRESH,
        _TAG_FRESH_ITEM,
        _TAG_IMMUTABLE,
        _TAG_PARAM,
    )
    for tag in order:
        for kind in kinds:
            if kind.tag == tag:
                return kind
    return _UNKNOWN


def _first_target_name(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, (ast.Tuple, ast.List)) and target.elts:
        first = target.elts[0]
        if isinstance(first, ast.Name):
            return first.id
    return None


def _target_name_list(target: ast.expr) -> list[Optional[str]]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        return [e.id if isinstance(e, ast.Name) else None for e in target.elts]
    return []


# ----------------------------------------------------------------------
# thunk analysis
# ----------------------------------------------------------------------


class _ThunkAnalyzer(_SiteAnalysis):
    """Per-dispatch-site work-list and thunk classification."""

    def analyze_site(self, site_call: ast.Call, work: ast.expr, anchor: ast.AST) -> None:
        self._resolve_work(work, anchor, depth=0)

    def _resolve_work(self, work: ast.expr, anchor: ast.AST, depth: int) -> None:
        if depth > 4:
            return
        if isinstance(work, ast.Name):
            for definition in self.scope.defs_at(work.id, anchor):
                if definition.value is not None:
                    self._resolve_work(definition.value, definition.value, depth + 1)
            return
        if isinstance(work, ast.ListComp):
            env = self._comp_env(work, anchor)
            self._thunk(work.elt, env, anchor)
            return
        if isinstance(work, ast.List):
            self._list_display(work, anchor)
            return
        # Unresolvable work list: the runtime oracle covers it.

    def _comp_env(self, comp: ast.ListComp, anchor: ast.AST) -> dict[str, _Kind]:
        env: dict[str, _Kind] = {}
        for gen in comp.generators:
            names = _target_name_list(gen.target)
            it = gen.iter
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id in ("enumerate", "zip", "range")
            ):
                if it.func.id == "range":
                    for name in names:
                        if name:
                            env[name] = _Kind(_TAG_DISTINCT)
                elif it.func.id == "enumerate":
                    if names and names[0]:
                        env[names[0]] = _Kind(_TAG_DISTINCT)
                    if len(names) > 1 and names[1] and it.args:
                        env[names[1]] = self._item_kind(it.args[0], anchor)
                else:  # zip: positional pairing of targets and arguments
                    for name, arg in zip(names, it.args):
                        if not name:
                            continue
                        if self.is_distinct_seq(arg, anchor):
                            env[name] = _Kind(_TAG_DISTINCT)
                        else:
                            env[name] = self._item_kind(arg, anchor)
                continue
            if self.is_distinct_seq(it, anchor):
                for name in names:
                    if name:
                        env[name] = _Kind(_TAG_DISTINCT)
                continue
            for name in names:
                if name:
                    env[name] = self._item_kind(it, anchor)
        return env

    def _item_kind(self, container: ast.expr, anchor: ast.AST) -> _Kind:
        kind = self.classify(container, {}, anchor)
        if kind.tag in (_TAG_FRESH, _TAG_FRESH_ITEM):
            return _Kind(_TAG_FRESH_ITEM)
        if kind.tag == _TAG_SHARD_CONTAINER:
            # ``for shard in shards``: positionally distinct engines.
            return _Kind(_TAG_SHARD, "distinct")
        return _UNKNOWN

    # -- one thunk ------------------------------------------------------
    def _thunk(self, elt: ast.expr, env: dict[str, _Kind], anchor: ast.AST) -> None:
        callee: Optional[ast.expr] = None
        cargs: list[ast.expr] = []
        if isinstance(elt, ast.Call):
            func = elt.func
            name = func.id if isinstance(func, ast.Name) else None
            chain = _attr_chain(func)
            if name == "partial" or (chain is not None and chain[-1] == "partial"):
                if not elt.args:
                    return
                callee = elt.args[0]
                cargs = list(elt.args[1:]) + [kw.value for kw in elt.keywords]
            else:
                return  # a thunk built by an opaque factory: oracle territory
        elif isinstance(elt, ast.Lambda):
            self._lambda_body(elt, env, anchor)
            return
        elif isinstance(elt, (ast.Attribute, ast.Name)):
            callee = elt
        else:
            return
        if callee is not None:
            self._callee(callee, env, anchor)
        for arg in cargs:
            self._capture(arg, env, anchor)

    def _callee(self, callee: ast.expr, env: dict[str, _Kind], anchor: ast.AST) -> None:
        if isinstance(callee, ast.Name):
            for definition in self.scope.defs_at(callee.id, anchor):
                if isinstance(definition.value, ast.Attribute):
                    self._callee(definition.value, env, definition.value)
            return
        if not isinstance(callee, ast.Attribute):
            return
        method = callee.attr
        receiver = callee.value
        chain = _attr_chain(callee)
        if chain is not None and chain[0] in ("self", "cls") and len(chain) == 2:
            key = self.graph.resolve_method(self.class_name or "", method)
            if key is not None:
                self._walk_method(key, callee, depth=0, seen=set())
                return
        kind = self.classify(receiver, env, anchor)
        self._receiver(kind, receiver, method, anchor)

    def _receiver(
        self, kind: _Kind, receiver: ast.expr, method: str, anchor: ast.AST
    ) -> None:
        if kind.tag == _TAG_SHARD:
            if kind.index in ("const", "invariant"):
                self.add(
                    receiver,
                    "RL202",
                    "ownership partition violated: the shard index is the same "
                    "for every dispatched thunk, so all thunks alias one "
                    "engine; index the shard container by a distinct shard id",
                )
            return
        if kind.tag == _TAG_SHARD_CONTAINER:
            self.add(
                receiver,
                "RL202",
                "ownership partition violated: the whole shard container "
                "escapes into a dispatched thunk; pass shards[sid] for "
                "exactly one distinct sid instead",
            )
            return
        if kind.tag == _TAG_SUBSTRATE:
            self.add(
                receiver,
                "RL201",
                "thread escape: a dispatched thunk captures the router's own "
                "simulated substrate (runtime/stats/clock); per-shard work "
                "must charge the owning shard's accounts only",
            )
            return
        if kind.tag == _TAG_SHARED_RO and method in (
            _CONTAINER_MUTATORS | _SUBSTRATE_MUTATORS
        ):
            self.add(
                receiver,
                "RL203",
                f"@shared_readonly object mutated inside a dispatched thunk "
                f"({method}()); shared state is frozen between partition "
                "and scatter",
            )

    def _capture(self, arg: ast.expr, env: dict[str, _Kind], anchor: ast.AST) -> None:
        kind = self.classify(arg, env, anchor)
        if kind.tag == _TAG_SHARD and kind.index in ("const", "invariant"):
            self.add(
                arg,
                "RL202",
                "ownership partition violated: every dispatched thunk "
                "receives the same shard's engine; pass shards[sid] for a "
                "distinct sid per thunk",
            )
        elif kind.tag == _TAG_SHARD_CONTAINER:
            self.add(
                arg,
                "RL202",
                "ownership partition violated: the whole shard container is "
                "passed into a dispatched thunk; a thunk may own exactly one "
                "shard's engine",
            )
        elif kind.tag == _TAG_SUBSTRATE:
            self.add(
                arg,
                "RL201",
                "thread escape: the router's simulated substrate "
                "(runtime/stats/clock) is passed into a dispatched thunk; "
                "substrate accounts are foreground-owned",
            )

    def _lambda_body(self, lam: ast.Lambda, env: dict[str, _Kind], anchor: ast.AST) -> None:
        lam_params = {a.arg for a in lam.args.args}
        for node in ast.walk(lam.body):
            if not isinstance(node, ast.Call):
                continue
            chain = _attr_chain(node.func)
            if chain is None:
                continue
            method = chain[-1]
            if chain[0] in ("self", "cls"):
                if len(chain) == 2:
                    key = self.graph.resolve_method(self.class_name or "", method)
                    if key is not None:
                        self._walk_method(key, node, depth=0, seen=set())
                        continue
                if isinstance(node.func, ast.Attribute):
                    kind = self.classify(node.func.value, env, anchor)
                    self._receiver(kind, node.func, method, anchor)
                continue
            root = chain[0]
            if (
                method in _CONTAINER_MUTATORS
                and root not in lam_params
                and root not in env
                and (self.scope.is_param(root) or self.scope.defs_at(root, anchor))
            ):
                self.add(
                    node,
                    "RL201",
                    f"thread escape: a dispatched thunk writes foreground "
                    f"local {root!r} through a side channel ({method}()); "
                    "thunks communicate results through return values only",
                )

    def _list_display(self, work: ast.List, anchor: ast.AST) -> None:
        engine_indexes: dict[str, ast.expr] = {}
        for elt in work.elts:
            self._thunk(elt, {}, anchor)
            for expr in self._engine_subscripts(elt, anchor):
                repr_ = ast.unparse(expr.slice)
                if repr_ in engine_indexes:
                    self.add(
                        expr,
                        "RL202",
                        f"ownership partition violated: two dispatched thunks "
                        f"alias the engine at shard index {repr_}; each thunk "
                        "must own a distinct shard",
                    )
                engine_indexes[repr_] = expr

    def _engine_subscripts(self, elt: ast.expr, anchor: ast.AST) -> list[ast.Subscript]:
        out: list[ast.Subscript] = []
        for node in ast.walk(elt):
            if isinstance(node, ast.Subscript):
                base = self.classify(node.value, {}, anchor)
                if base.tag == _TAG_SHARD_CONTAINER:
                    out.append(node)
        return out

    # -- interprocedural walk of bound self methods --------------------
    def _walk_method(
        self, key: str, origin: ast.AST, depth: int, seen: set[str]
    ) -> None:
        if depth > _MAX_WALK_DEPTH or key in seen:
            return
        seen.add(key)
        info = self.graph.functions.get(key)
        if info is None:
            return
        for node in ast.walk(info.node):
            self._walk_stmt(node, info.rel)
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] in ("self", "cls")
                ):
                    nxt = self.graph.resolve_method(
                        info.class_name or self.class_name or "", chain[1]
                    )
                    if nxt is not None:
                        self._walk_method(nxt, origin, depth + 1, seen)

    def _walk_stmt(self, node: ast.AST, rel: str) -> None:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            chain = _attr_chain(base) if isinstance(base, ast.Attribute) else None
            if chain is None or chain[0] not in ("self", "cls"):
                continue
            declared = self.reg.attr_type(self.class_name, chain[1])
            if self.reg.is_shared_ro_type(declared):
                self.add(
                    target,
                    "RL203",
                    f"@shared_readonly object written inside a dispatched "
                    f"thunk (self.{chain[1]}); shared state is frozen "
                    "between partition and scatter",
                    rel=rel,
                )
            else:
                self.add(
                    target,
                    "RL201",
                    f"thread escape: a dispatched thunk writes router state "
                    f"self.{'.'.join(chain[1:])}; router attributes are "
                    "foreground-owned between dispatch and scatter",
                    rel=rel,
                )
        if isinstance(node, ast.Call):
            chain = _attr_chain(node.func)
            if chain is None or chain[0] not in ("self", "cls") or len(chain) < 3:
                return
            method = chain[-1]
            declared = self.reg.attr_type(self.class_name, chain[1])
            if self.reg.is_shared_ro_type(declared) and method in (
                _CONTAINER_MUTATORS | _SUBSTRATE_MUTATORS
            ):
                self.add(
                    node,
                    "RL203",
                    f"@shared_readonly object mutated inside a dispatched "
                    f"thunk (self.{chain[1]}.{method}()); shared state is "
                    "frozen between partition and scatter",
                    rel=rel,
                )
            elif method in _SUBSTRATE_MUTATORS and (
                chain[1] in _SUBSTRATE_ATTRS or chain[-2] in _SUBSTRATE_ATTRS
            ):
                self.add(
                    node,
                    "RL201",
                    f"thread escape: a dispatched thunk mutates the shared "
                    f"substrate (self.{'.'.join(chain[1:-1])}.{method}()); "
                    "per-shard accounting belongs to the owning shard's "
                    "runtime",
                    rel=rel,
                )
            elif method in _CONTAINER_MUTATORS and chain[1] not in ("shards",):
                self.add(
                    node,
                    "RL201",
                    f"thread escape: a dispatched thunk mutates router "
                    f"container self.{'.'.join(chain[1:-1])} ({method}()); "
                    "router state is foreground-owned",
                    rel=rel,
                )


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def analyze_module(
    rel: str,
    tree: ast.Module,
    reg: ContractRegistry,
    graph: CallGraph,
    active: frozenset[str],
) -> list[RaceFinding]:
    """Run the escape/ownership rules over one shard-layer module."""
    findings: list[RaceFinding] = []
    for class_name, func in iter_function_defs(tree):
        qual = f"{class_name}.{func.name}" if class_name else func.name
        key = f"{rel}::{qual}"
        own_forward = reg.forwarders.get(key)
        params = _param_names(func)
        pool_names = _pool_annotated_params(func) | ({"pool"} & params)
        sites: list[tuple[ast.Call, ast.expr]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            if _is_pool_run(node, class_name, reg, pool_names) and node.args:
                work = node.args[0]
                if (
                    own_forward is not None
                    and isinstance(work, ast.Name)
                    and work.id in params
                ):
                    continue  # the forwarder's own seam: analyzed at call sites
                sites.append((node, work))
                continue
            chain = _attr_chain(node.func)
            if (
                chain is not None
                and len(chain) == 2
                and chain[0] in ("self", "cls")
                and class_name is not None
            ):
                target = graph.resolve_method(class_name, chain[1])
                if target is not None and target in reg.forwarders:
                    __, work_idx = reg.forwarders[target]
                    if work_idx < len(node.args):
                        sites.append((node, node.args[work_idx]))
        if not sites:
            continue
        scope = _Scope(func)
        analyzer = _ThunkAnalyzer(rel, class_name, scope, reg, graph, active)
        for call, work in sites:
            analyzer.analyze_site(call, work, call)
        findings.extend(analyzer.findings)
    return findings
