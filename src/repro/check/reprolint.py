"""Repo-specific AST lint rules (``reprolint``).

The PR-1 architecture has contracts that generic linters cannot see: one
:class:`~repro.sim.runtime.EngineRuntime` owns the simulation substrate,
all disk traffic goes through the cost-charging :class:`SimDisk` API, and
background maintenance registers with the :class:`BackgroundScheduler`
instead of running inline.  Simulated runs must also be bit-for-bit
deterministic, which bans the wall clock and unseeded randomness outright.
Each rule below mechanically enforces one of those contracts over
``src/repro``.

Rules:

=======  ==============================================================
RL001    raw-substrate: ``SimClock`` / ``SimDisk`` / ``StatCounters``
         may only be constructed inside ``repro/sim`` (components receive
         them from an ``EngineRuntime``).
RL002    disk-bypass: no access to ``SimDisk`` internals (``_blobs``,
         offset cursors, direct ``busy_ns`` writes) outside ``repro/sim``
         — all I/O must pay the cost model through ``read``/``write``.
RL003    inline-background: maintenance entry points may only be invoked
         from their owner modules; everyone else submits to the
         ``BackgroundScheduler``.  Real threads are banned entirely.
RL004    wall-clock: no ``time`` / ``datetime`` imports — simulated code
         reads time only from ``SimClock``.
RL005    unseeded-random: no module-global ``random`` functions and no
         seedless ``random.Random()`` — every RNG carries an explicit
         seed so runs reproduce.
RL006    mutable-default: no mutable default argument values.
RL007    hot-path-overhead: inside the hot packages (``art/``, ``lsm/``,
         ``sim/``, ``diskbtree/``) no function-local imports and no
         attribute-chain calls (``self.clock.charge_cpu(...)``) inside
         loops — hoist the import to module top and bind the method to a
         local before the loop.  These patterns are semantically fine but
         cost real wall-clock time per call on the simulator's hottest
         paths (PR 3's profiles showed them dominating).
RL008    router-dispatch-shared-state: inside ``shard/`` modules, no
         lock acquisition (``.acquire()``/``.release()``, ``with`` on
         router state) and no writes to ``self``-rooted state inside a
         loop.  The router's dispatch contract is lock-free: batches are
         partitioned once and dispatched once; per-operation loop bodies
         touch only function locals and the owning shard (bound to a
         local before the loop).  A router-side lock or shared counter
         on the data path would serialize exactly the concurrency the
         sharded layer exists to provide.
RL009    policy-determinism: inside ``cache/`` modules, no ``time`` /
         ``random`` / ``os`` imports and no iteration over bare ``set``
         values (set literals, set comprehensions, ``set()`` /
         ``frozenset()`` calls).  Eviction decisions must be a pure
         function of the hook-call sequence — hash-order iteration or
         environmental input would silently break the byte-identical
         results contract for every system the policy serves.
=======  ==============================================================

A finding on a given line is suppressed by the inline pragma
``# reprolint: allow[RL00X]`` (comma-separated ids, or ``allow[*]`` for
all rules); pragmas document *why* at the call site, like ``noqa`` but
scoped to this linter.  Files under a ``tests`` directory are never
linted: the contracts bind the library, and tests must be free to build
corrupted or standalone fixtures.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "allowed_rules",
    "filter_findings",
    "iter_pragmas",
    "lint_source",
    "lint_paths",
    "module_rel_path",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Rule:
    """Static description of one lint rule (for ``--list-rules``)."""

    rule_id: str
    name: str
    summary: str
    #: where the rule applies — module prefixes, a construct, or a runtime
    #: oracle; shown by ``--list-rules`` and the generated DESIGN.md table.
    scope: str = "src/repro (tests excluded)"


RULES: tuple[Rule, ...] = (
    Rule(
        "RL001",
        "raw-substrate",
        "construct SimClock/SimDisk/StatCounters only in repro/sim",
        scope="everywhere outside sim/",
    ),
    Rule(
        "RL002",
        "disk-bypass",
        "no SimDisk internals access outside repro/sim",
        scope="everywhere outside sim/",
    ),
    Rule(
        "RL003",
        "inline-background",
        "maintenance runs via the BackgroundScheduler",
        scope="maintenance entry points (curated owner table)",
    ),
    Rule(
        "RL004",
        "wall-clock",
        "no time/datetime imports in simulated code",
        scope="everywhere outside bench/ and check/",
    ),
    Rule(
        "RL005",
        "unseeded-random",
        "all randomness comes from an explicitly seeded RNG",
        scope="src/repro (tests excluded)",
    ),
    Rule(
        "RL006",
        "mutable-default",
        "no mutable default argument values",
        scope="src/repro (tests excluded)",
    ),
    Rule(
        "RL007",
        "hot-path-overhead",
        "no function-local imports or in-loop attribute-chain calls in hot modules",
        scope="hot modules (art/ lsm/ sim/ diskbtree/)",
    ),
    Rule(
        "RL008",
        "router-dispatch-shared-state",
        "no lock acquisition or shared-mutable-state writes in shard dispatch loops",
        scope="shard/ dispatch loops",
    ),
    Rule(
        "RL009",
        "policy-determinism",
        "cache-policy modules: no time/random/os imports, no bare-set iteration",
        scope="cache/ policy modules",
    ),
)

#: substrate classes whose construction is reserved to ``repro/sim``.
_SUBSTRATE_NAMES = frozenset({"SimClock", "SimDisk", "StatCounters"})

#: ``SimDisk`` internals that bypass cost-model charging when touched.
_DISK_INTERNALS = frozenset({"_blobs", "_next_offset", "_last_read_end", "_last_write_end"})

#: maintenance entry points and the modules allowed to call them inline
#: (their owners plus the scheduler-runner modules that register them).
_MAINTENANCE_OWNERS: dict[str, tuple[str, ...]] = {
    "note_inserts": ("core/precleaner.py",),
    "run_pass": ("core/precleaner.py", "core/indexy.py"),
    "release_cycle": ("core/indexy.py",),
    "_maybe_compact": ("lsm/store.py",),
    "_proactive_writeback_pass": ("diskbtree/bufferpool.py",),
}

#: modules whose import means the code can observe the wall clock.
_WALL_CLOCK_MODULES = frozenset({"time", "datetime"})

#: ``random``-module functions that use the process-global, OS-seeded RNG.
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "seed",
        "getrandbits",
    }
)

#: constructors whose results are mutable (beyond the literal displays).
_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "Counter", "defaultdict", "deque", "OrderedDict"}
)

#: packages forming the simulator's hot paths; RL007 polices wall-clock
#: overhead patterns in these modules only.
_HOT_PREFIXES = ("art/", "lsm/", "sim/", "diskbtree/")

#: imports that would let a cache policy observe anything beyond its
#: hook-call sequence (RL009).
_POLICY_BANNED_IMPORTS = frozenset({"time", "random", "os"})

#: method names whose in-loop invocation on ``self``-rooted state means
#: the dispatch loop is mutating shared router state (RL008).
_SHARD_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "remove",
        "setdefault",
        "update",
    }
)

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*allow\[([^\]]*)\]")


def module_rel_path(path: str | Path) -> str:
    """Path of ``path`` relative to the ``repro`` package root.

    Files outside the package (lint fixtures, ad-hoc scripts) fall back to
    their bare filename, so the module-scoped allowances never match them.
    """
    posix = Path(path).as_posix()
    marker = "/repro/"
    if posix.startswith("repro/"):
        return posix[len("repro/") :]
    idx = posix.rfind(marker)
    if idx >= 0:
        return posix[idx + len(marker) :]
    return Path(posix).name


def _in_sim(rel: str) -> bool:
    return rel.startswith("sim/")


def _is_hot(rel: str) -> bool:
    return rel.startswith(_HOT_PREFIXES)


class _Visitor(ast.NodeVisitor):
    def __init__(self, rel: str) -> None:
        self.rel = rel
        self.findings: list[tuple[int, int, str, str]] = []
        self._hot = _is_hot(rel)
        self._shard = rel.startswith("shard/")
        self._policy = rel.startswith("cache/")
        self._func_depth = 0
        self._loop_depth = 0

    def _add(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            (getattr(node, "lineno", 1), getattr(node, "col_offset", 0), rule, message)
        )

    # -- helpers -------------------------------------------------------
    @staticmethod
    def _callee_name(func: ast.expr) -> str | None:
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    @staticmethod
    def _rooted_at_self(node: ast.expr) -> bool:
        """True when an attribute/subscript chain bottoms out at ``self``."""
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    @staticmethod
    def _dotted(node: ast.expr) -> str | None:
        """Render an attribute chain rooted at a plain name (``a.b.c``)."""
        parts: list[str] = []
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        return ".".join(reversed(parts))

    # -- RL009: bare-set iteration in policy modules -------------------
    @staticmethod
    def _is_bare_set(expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id in ("set", "frozenset")
        return False

    def _check_policy_iteration(self, iter_expr: ast.expr) -> None:
        if self._policy and self._is_bare_set(iter_expr):
            self._add(
                iter_expr,
                "RL009",
                "iteration over a bare set is hash-order-dependent; policy "
                "decisions must iterate insertion-ordered dicts or lists",
            )

    def _visit_comprehension(self, node: ast.expr) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_policy_iteration(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    # -- RL007: loop / function-scope tracking -------------------------
    def _visit_for(self, node: ast.For | ast.AsyncFor) -> None:
        self._check_policy_iteration(node.iter)
        # The iterator expression runs once, outside the per-iteration
        # cost, so it is visited at the enclosing loop depth.
        self.visit(node.iter)
        self._loop_depth += 1
        self.visit(node.target)
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._visit_for(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._visit_for(node)

    def visit_While(self, node: ast.While) -> None:
        # Unlike a for-iterator, the while-test re-evaluates every
        # iteration, so it counts as loop-body code.
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # -- RL001 / RL003 / RL005: calls ----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        name = self._callee_name(node.func)
        if name in _SUBSTRATE_NAMES and not _in_sim(self.rel):
            self._add(
                node,
                "RL001",
                f"direct {name}() construction outside repro/sim; "
                "take the instance from an EngineRuntime",
            )
        if name in _MAINTENANCE_OWNERS and self.rel not in _MAINTENANCE_OWNERS[name]:
            self._add(
                node,
                "RL003",
                f"inline call to maintenance entry point {name}(); "
                "submit the work to the BackgroundScheduler instead",
            )
        if isinstance(node.func, ast.Attribute) and isinstance(node.func.value, ast.Name):
            base = node.func.value.id
            if base == "random":
                if node.func.attr in _GLOBAL_RANDOM_FUNCS:
                    self._add(
                        node,
                        "RL005",
                        f"random.{node.func.attr}() uses the process-global RNG; "
                        "use an explicitly seeded random.Random(seed)",
                    )
                elif node.func.attr == "Random" and not node.args and not node.keywords:
                    self._add(
                        node,
                        "RL005",
                        "random.Random() without a seed is OS-seeded; pass an explicit seed",
                    )
            elif base == "threading" and node.func.attr == "Thread":
                self._add(
                    node,
                    "RL003",
                    "real threads are banned; register a task on the BackgroundScheduler",
                )
        elif isinstance(node.func, ast.Name) and node.func.id == "Random":
            if not node.args and not node.keywords:
                self._add(
                    node,
                    "RL005",
                    "Random() without a seed is OS-seeded; pass an explicit seed",
                )
        if self._shard and self._loop_depth > 0:
            if name in ("acquire", "release"):
                self._add(
                    node,
                    "RL008",
                    f"lock {name}() inside a shard dispatch loop; the router's "
                    "data path is lock-free by contract (partition once, "
                    "dispatch once)",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and name in _SHARD_MUTATORS
                and self._rooted_at_self(node.func.value)
            ):
                self._add(
                    node,
                    "RL008",
                    f"{name}() mutates self-rooted state inside a shard "
                    "dispatch loop; accumulate into function locals and "
                    "publish once after the loop",
                )
        if (
            self._hot
            and self._loop_depth > 0
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Attribute)
        ):
            # Only chains rooted at ``self`` are flagged: those are
            # loop-invariant by construction (``self`` cannot rebind),
            # so the bound method can always be hoisted.  A chain rooted
            # at a loop variable usually cannot.
            chain = self._dotted(node.func)
            if chain is not None and chain.startswith("self."):
                self._add(
                    node,
                    "RL007",
                    f"attribute-chain call {chain}() inside a loop on a hot "
                    "path; bind the method to a local before the loop",
                )
        self.generic_visit(node)

    # -- RL002: disk internals -----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in _DISK_INTERNALS and not _in_sim(self.rel):
            self._add(
                node,
                "RL002",
                f"access to SimDisk internal '{node.attr}' bypasses cost-model "
                "charging; use disk.read()/disk.write()",
            )
        self.generic_visit(node)

    def _check_busy_ns_write(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute) and target.attr == "busy_ns" and not _in_sim(self.rel):
            self._add(
                target,
                "RL002",
                "writing busy_ns directly forges disk time; only SimDisk may charge it",
            )

    def _check_shard_state_write(self, target: ast.expr) -> None:
        if self._shard and self._loop_depth > 0 and self._rooted_at_self(target):
            self._add(
                target,
                "RL008",
                "write to self-rooted state inside a shard dispatch loop; "
                "per-operation work may touch only function locals and the "
                "owning shard",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_busy_ns_write(target)
            self._check_shard_state_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_busy_ns_write(node.target)
        self._check_shard_state_write(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_shard_state_write(node.target)
        self.generic_visit(node)

    # -- RL008: per-operation lock scopes ------------------------------
    def _check_with(self, node: ast.With | ast.AsyncWith) -> None:
        if not (self._shard and self._loop_depth > 0):
            return
        for item in node.items:
            expr = item.context_expr
            held = expr.func if isinstance(expr, ast.Call) else expr
            if self._rooted_at_self(held):
                self._add(
                    item.context_expr,
                    "RL008",
                    "context manager on self-rooted state inside a shard "
                    "dispatch loop (a per-operation lock scope); the dispatch "
                    "path takes no locks",
                )

    def visit_With(self, node: ast.With) -> None:
        self._check_with(node)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._check_with(node)
        self.generic_visit(node)

    # -- RL003 / RL004: imports ----------------------------------------
    def _check_import(self, node: ast.Import | ast.ImportFrom, module: str) -> None:
        root = module.split(".")[0]
        if self._policy and root in _POLICY_BANNED_IMPORTS:
            self._add(
                node,
                "RL009",
                f"import of '{root}' in a cache-policy module; eviction "
                "decisions must be a pure function of the hook-call sequence",
            )
            return
        if root in _WALL_CLOCK_MODULES:
            self._add(
                node,
                "RL004",
                f"import of '{root}' reads the wall clock; simulated code uses SimClock",
            )
        elif root == "threading":
            self._add(
                node,
                "RL003",
                "import of 'threading': background work registers with the "
                "BackgroundScheduler, it does not spawn threads",
            )
        elif root == "concurrent":
            self._add(
                node,
                "RL003",
                "import of 'concurrent': real thread pools are banned in "
                "simulated code; the shard worker pool (shard/pool.py) is "
                "the one pragma'd exception",
            )

    def _check_local_import(self, node: ast.Import | ast.ImportFrom) -> None:
        if self._hot and self._func_depth > 0:
            self._add(
                node,
                "RL007",
                "function-local import on a hot path pays the import-machinery "
                "lookup on every call; hoist it to module top",
            )

    def visit_Import(self, node: ast.Import) -> None:
        self._check_local_import(node)
        for alias in node.names:
            self._check_import(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._check_local_import(node)
        if node.module:
            self._check_import(node, node.module)
            if node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RANDOM_FUNCS:
                        self._add(
                            node,
                            "RL005",
                            f"'from random import {alias.name}' pulls in the "
                            "process-global RNG; use random.Random(seed)",
                        )

    # -- RL006: mutable defaults ---------------------------------------
    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        defaults: list[ast.expr] = list(node.args.defaults)
        defaults.extend(d for d in node.args.kw_defaults if d is not None)
        for default in defaults:
            mutable = isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
            )
            if isinstance(default, ast.Call):
                callee = self._callee_name(default.func)
                mutable = callee in _MUTABLE_CONSTRUCTORS
            if mutable:
                self._add(
                    default,
                    "RL006",
                    f"mutable default argument in {node.name}(); default to None "
                    "and construct inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1


def allowed_rules(line: str) -> frozenset[str] | None:
    """Rule ids the line's pragma allows, or None when there is no pragma.

    Shared by the shallow rules here and the deep RL1xx rules in
    :mod:`repro.check.deepcheck` — one ``# reprolint: allow[...]`` pragma
    grammar suppresses findings from either layer.
    """
    match = _PRAGMA_RE.search(line)
    if match is None:
        return None
    return frozenset(part.strip() for part in match.group(1).split(",") if part.strip())


def iter_pragmas(source: str) -> list[tuple[int, frozenset[str]]]:
    """Every ``allow[...]`` pragma in ``source`` as ``(lineno, rule ids)``.

    The stale-pragma audit (``--unused-pragmas``) compares these against
    the raw findings each line would produce without suppression.  Only
    genuine ``#`` comments count — the tokenizer distinguishes a real
    pragma from a docstring that merely *mentions* the pragma grammar.
    """
    import io
    import tokenize

    out: list[tuple[int, frozenset[str]]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, SyntaxError):
        return out
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        allowed = allowed_rules(token.string)
        if allowed is not None:
            out.append((token.start[0], allowed))
    return out


def filter_findings(
    findings: Iterable[Finding], lines_by_path: dict[str, list[str]]
) -> list[Finding]:
    """Drop findings suppressed by a same-line ``allow[...]`` pragma.

    One filter serves all three rule layers (shallow RL0xx, deep RL1xx,
    race RL2xx) so the pragma grammar cannot drift between them.
    """
    kept: list[Finding] = []
    for finding in findings:
        lines = lines_by_path.get(finding.path, [])
        text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        allowed = allowed_rules(text)
        if allowed is not None and (finding.rule in allowed or "*" in allowed):
            continue
        kept.append(finding)
    return kept


def lint_source(
    source: str, path: str | Path, *, apply_pragmas: bool = True
) -> list[Finding]:
    """Lint one module's source text; returns findings sorted by location.

    ``apply_pragmas=False`` returns the raw findings including suppressed
    ones — the substrate of the stale-pragma audit.
    """
    rel = module_rel_path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(str(path), exc.lineno or 1, exc.offset or 0, "RL000", f"syntax error: {exc.msg}")
        ]
    visitor = _Visitor(rel)
    visitor.visit(tree)
    raw = [
        Finding(str(path), line, col, rule, message)
        for line, col, rule, message in sorted(visitor.findings)
    ]
    if not apply_pragmas:
        return raw
    return filter_findings(raw, {str(path): source.splitlines()})


def _iter_py_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "tests" in sub.parts:
                    continue
                yield sub
        elif path.suffix == ".py":
            yield path


def lint_paths(
    paths: Iterable[str | Path], *, apply_pragmas: bool = True
) -> list[Finding]:
    """Lint every ``*.py`` file under ``paths`` (test directories excluded)."""
    findings: list[Finding] = []
    for path in _iter_py_files(paths):
        findings.extend(
            lint_source(
                path.read_text(encoding="utf-8"), path, apply_pragmas=apply_pragmas
            )
        )
    return findings
