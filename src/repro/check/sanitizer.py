"""Runtime invariant sanitizers.

Composable validators for every structure in the stack.  Each ``check_*``
function walks one structure and returns a list of :class:`Violation`
records (empty when the structure is healthy); :class:`IndexSanitizer`
composes them into the hook points :class:`~repro.core.indexy.IndeXY`
calls when constructed with ``debug_checks=True``, and
:class:`StoreSanitizer` does the same for the framework-less baseline
systems (B+-B+, RocksDB-like).

The catalogue (see DESIGN.md for the paper mapping):

* **ART** — node-type capacity, child-count agreement, radix prefix
  consistency, exact leaf counts, dirty-bit propagation (a dirty leaf
  must have every ancestor's D bit set, or ``iter_dirty_leaves`` pruning
  would lose unflushed data), and exact incremental memory accounting.
* **C bits** — all four D/C states are legal protocol states, so C-bit
  health cannot be judged locally; :class:`CheckBackAuditor` shadows
  every C-bit transition the pre-cleaner makes and the audit flags any
  C bit the scan did not set.
* **B+ tree** — key ordering and separator bounds, arity and capacity,
  leaf counts, per-entry dirty propagation, memory accounting.
* **disk B+ tree** — page payload within the page size, ordering and
  bounds, the leaf chain visiting exactly the tree's leaves in order,
  buffer-pool frame bookkeeping, and no leaked pins between operations.
* **LSM** — levels 1+ sorted and disjoint, per-table entry ordering and
  metadata agreement, bloom coverage of every stored key, and tombstone
  visibility (a key whose newest version is a tombstone reads as absent).
* **engine** — Index X within the watermarks after a release cycle, X/Y
  coherence after a flush, deleted keys never resurrecting, and the
  simulated clocks never running backwards.
* **shard router** — per-shard substrate isolation (no two shards may
  share a clock, disk, or stats bus — the router's whole contract is
  that shards are independent engines), partitioner/shard-count
  agreement, placement determinism (``shard_of`` and ``split`` agree and
  stay in range), and monotone placement for ordered partitioners.
  :class:`ShardSanitizer` runs these router-level checks; each shard
  additionally runs its own system-level sanitizer exactly as when it
  serves alone.

Sanitizers read through the same charged APIs as the engine (buffer-pool
page access, SSTable block reads), so enabling them perturbs simulated
time; see EXPERIMENTS.md for the measured overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

# Thread *identity* only (no locks, no thread creation): the ownership
# oracle below must know which pool worker touched a shard substrate to
# check its claim against the shard's owner token.
from threading import get_ident  # reprolint: allow[RL003]
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional, Sequence, TypeVar

from repro.art.nodes import InnerNode as ARTInnerNode
from repro.art.nodes import Leaf as ARTLeaf
from repro.art.tree import AdaptiveRadixTree
from repro.btree.node import BInner, BLeaf, BNode
from repro.btree.tree import BPlusTree
from repro.core.adapters import ARTIndexX, BTreeIndexX
from repro.core.multi_y import RoutedIndexY
from repro.diskbtree.bufferpool import BufferPool
from repro.diskbtree.page import InnerPage, LeafPage
from repro.cache.bytecache import PolicyCache
from repro.diskbtree.tree import DiskBPlusTree
from repro.lsm.store import TOMBSTONE, LSMStore
from repro.shard.ownership import arm_dispatch, disarm_dispatch

if TYPE_CHECKING:
    from repro.core.indexy import IndeXY
    from repro.shard.pool import ShardWorkerPool
    from repro.shard.router import ShardRouter
    from repro.sim.runtime import EngineRuntime

__all__ = [
    "Violation",
    "CheckError",
    "CacheSanitizer",
    "CheckBackAuditor",
    "ClockMonotonicityGuard",
    "IndexSanitizer",
    "OwnershipSanitizer",
    "ShardSanitizer",
    "StoreSanitizer",
    "check_art",
    "check_art_memory",
    "check_btree",
    "check_buffer_pool",
    "check_disk_btree",
    "check_flush_coherence",
    "check_indexy",
    "check_lsm",
    "check_no_leaked_pins",
    "check_policy_cache",
    "check_release_watermark",
    "check_shard_router",
]

#: cap on violations one walk reports for a single check (a corrupted
#: structure tends to trip the same assertion everywhere).
_MAX_PER_CHECK = 8


@dataclass(frozen=True)
class Violation:
    """One broken invariant at one location."""

    check: str
    message: str

    def render(self) -> str:
        return f"[{self.check}] {self.message}"


class CheckError(AssertionError):
    """Raised when sanitizers find one or more violations."""

    def __init__(self, violations: list[Violation]) -> None:
        self.violations = violations
        lines = [v.render() for v in violations[:_MAX_PER_CHECK]]
        if len(violations) > _MAX_PER_CHECK:
            lines.append(f"... and {len(violations) - _MAX_PER_CHECK} more")
        super().__init__("sanitizer found {} violation(s):\n  {}".format(
            len(violations), "\n  ".join(lines)
        ))


class _Collector:
    """Accumulates violations for one check, capped per check name."""

    def __init__(self) -> None:
        self.violations: list[Violation] = []
        self._per_check: dict[str, int] = {}

    def add(self, check: str, message: str) -> None:
        seen = self._per_check.get(check, 0)
        self._per_check[check] = seen + 1
        if seen < _MAX_PER_CHECK:
            self.violations.append(Violation(check, message))


# ----------------------------------------------------------------------
# ART structural checks
# ----------------------------------------------------------------------
def iter_art_inner_nodes(tree: AdaptiveRadixTree) -> Iterator[ARTInnerNode]:
    """All live inner nodes of ``tree`` (pre-order)."""
    stack: list[ARTInnerNode] = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        for __, child in node.children_items():
            if isinstance(child, ARTInnerNode):
                stack.append(child)


def check_art(tree: AdaptiveRadixTree) -> list[Violation]:
    """Structural invariants of the adaptive radix tree."""
    out = _Collector()
    root = tree.root
    if not isinstance(root, ARTInnerNode):
        out.add("art-root", f"root must be an inner node, found {type(root).__name__}")
        return out.violations

    def walk(node: ARTInnerNode, path: bytes, ancestors_dirty: bool) -> tuple[int, bool]:
        """Returns ``(leaves_below, any_dirty_leaf_below)``."""
        full_path = path + node.prefix
        counted = 0
        leaves = 0
        any_dirty = False
        for byte, child in node.children_items():
            counted += 1
            child_path = full_path + bytes([byte])
            if isinstance(child, ARTLeaf):
                leaves += 1
                if not child.key.startswith(child_path):
                    out.add(
                        "art-prefix",
                        f"leaf key {child.key!r} does not extend its radix path "
                        f"{child_path!r}",
                    )
                if child.dirty:
                    any_dirty = True
                    if not (node.dirty and ancestors_dirty):
                        out.add(
                            "art-dirty-propagation",
                            f"dirty leaf {child.key!r} has a clean ancestor; "
                            "iter_dirty_leaves pruning would lose it",
                        )
            else:
                sub_leaves, sub_dirty = walk(
                    child, child_path, ancestors_dirty and node.dirty
                )
                leaves += sub_leaves
                any_dirty = any_dirty or sub_dirty
        if counted != node.num_children:
            out.add(
                "art-child-count",
                f"{type(node).__name__} at path {full_path!r} reports "
                f"{node.num_children} children but iterates {counted}",
            )
        if counted > type(node).CAPACITY:
            out.add(
                "art-capacity",
                f"{type(node).__name__} at path {full_path!r} holds {counted} "
                f"children, over its capacity {type(node).CAPACITY}",
            )
        if node.leaf_count != leaves:
            out.add(
                "art-leaf-count",
                f"{type(node).__name__} at path {full_path!r} records "
                f"leaf_count={node.leaf_count}, actual {leaves}",
            )
        if any_dirty and not node.dirty:
            out.add(
                "art-dirty-propagation",
                f"node at path {full_path!r} is clean but holds dirty leaves",
            )
        return leaves, any_dirty

    total, __ = walk(root, b"", True)
    if total != tree.key_count:
        out.add(
            "art-key-count",
            f"tree.key_count={tree.key_count} but the tree holds {total} leaves",
        )
    return out.violations


def check_art_memory(tree: AdaptiveRadixTree) -> list[Violation]:
    """The incremental memory account must equal a fresh recomputation."""
    actual = tree.subtree_memory(tree.root)
    if actual != tree.memory_bytes:
        return [
            Violation(
                "art-memory",
                f"incremental memory_bytes={tree.memory_bytes} but recomputed "
                f"footprint is {actual}",
            )
        ]
    return []


# ----------------------------------------------------------------------
# check-back C-bit auditing
# ----------------------------------------------------------------------
class CheckBackAuditor:
    """Shadow state for the pre-cleaner's check-back C bits.

    Every D/C combination is a legal protocol state, so a purely local
    structural check cannot tell a healthy C bit from a corrupted one.
    Instead the pre-cleaner notifies this auditor on every C-bit set and
    clear (and the ART tree notifies it when adaptive resizing replaces a
    node object); the audit then flags any live node whose C bit the scan
    did not set.  Registered nodes are held by strong reference so object
    ids cannot be reused while an entry is live; entries whose node left
    the tree or lost its C bit are pruned silently.
    """

    def __init__(self) -> None:
        self._candidates: dict[int, Any] = {}

    def note_set(self, node: Any) -> None:
        self._candidates[id(node)] = node

    def note_clear(self, node: Any) -> None:
        self._candidates.pop(id(node), None)

    def note_replaced(self, old: Any, new: Any) -> None:
        """Adaptive resizing copied ``old``'s metadata into ``new``."""
        if self._candidates.pop(id(old), None) is not None and getattr(
            new, "clean_candidate", False
        ):
            self._candidates[id(new)] = new

    @property
    def candidate_count(self) -> int:
        return len(self._candidates)

    def audit(self, live_nodes: Iterable[Any]) -> list[Violation]:
        out = _Collector()
        live_ids: set[int] = set()
        for node in live_nodes:
            live_ids.add(id(node))
            if getattr(node, "clean_candidate", False) and (
                self._candidates.get(id(node)) is not node
            ):
                out.add(
                    "checkback-c-bit",
                    f"{type(node).__name__} carries a C bit the pre-cleaning "
                    "scan never set",
                )
        stale = [
            key
            for key, node in self._candidates.items()
            if key not in live_ids or not getattr(node, "clean_candidate", False)
        ]
        for key in stale:
            del self._candidates[key]
        return out.violations


# ----------------------------------------------------------------------
# in-memory B+ tree checks
# ----------------------------------------------------------------------
def iter_btree_nodes(tree: BPlusTree) -> Iterator[BNode]:
    """All live nodes of the in-memory B+ tree (pre-order)."""
    stack: list[BNode] = [tree.root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BInner):
            stack.extend(node.children)


def check_btree(tree: BPlusTree) -> list[Violation]:
    """Structural invariants of the in-memory B+ tree."""
    out = _Collector()

    def walk(
        node: BNode,
        low: Optional[bytes],
        high: Optional[bytes],
        ancestors_dirty: bool,
    ) -> tuple[int, bool]:
        """Returns ``(entries_below, any_dirty_entry_below)``.

        Keys under ``node`` must satisfy ``low <= key < high`` (half-open;
        ``None`` means unbounded): ``child_slot`` routes keys equal to a
        separator into the right sibling.
        """
        if isinstance(node, BLeaf):
            n = len(node.keys)
            if len(node.values) != n or len(node.entry_dirty) != n:
                out.add(
                    "btree-parallel-arrays",
                    f"leaf arrays disagree: {n} keys, {len(node.values)} values, "
                    f"{len(node.entry_dirty)} dirty flags",
                )
            if n > node.capacity:
                out.add("btree-capacity", f"leaf holds {n} entries, capacity {node.capacity}")
            for i, key in enumerate(node.keys):
                if i > 0 and node.keys[i - 1] >= key:
                    out.add(
                        "btree-order",
                        f"leaf keys out of order: {node.keys[i - 1]!r} !< {key!r}",
                    )
                if (low is not None and key < low) or (high is not None and key >= high):
                    out.add(
                        "btree-bounds",
                        f"leaf key {key!r} escapes its separator range "
                        f"[{low!r}, {high!r})",
                    )
            any_dirty = any(node.entry_dirty[: len(node.keys)])
            if any_dirty and not (node.dirty and ancestors_dirty):
                out.add(
                    "btree-dirty-propagation",
                    "leaf holds dirty entries but its dirty bit or an ancestor's "
                    "is clear; iter_dirty_entries pruning would lose them",
                )
            return n, any_dirty

        if len(node.children) != len(node.separators) + 1:
            out.add(
                "btree-arity",
                f"inner node has {len(node.children)} children for "
                f"{len(node.separators)} separators",
            )
            return node.leaf_count, False
        if len(node.children) > node.capacity:
            out.add(
                "btree-capacity",
                f"inner node holds {len(node.children)} children, "
                f"capacity {node.capacity}",
            )
        for i, sep in enumerate(node.separators):
            if i > 0 and node.separators[i - 1] >= sep:
                out.add(
                    "btree-order",
                    f"separators out of order: {node.separators[i - 1]!r} !< {sep!r}",
                )
            if (low is not None and sep < low) or (high is not None and sep >= high):
                out.add(
                    "btree-bounds",
                    f"separator {sep!r} escapes its range [{low!r}, {high!r})",
                )
        entries = 0
        any_dirty = False
        below_dirty = ancestors_dirty and node.dirty
        for i, child in enumerate(node.children):
            child_low = low if i == 0 else node.separators[i - 1]
            child_high = high if i == len(node.children) - 1 else node.separators[i]
            sub_entries, sub_dirty = walk(child, child_low, child_high, below_dirty)
            entries += sub_entries
            any_dirty = any_dirty or sub_dirty
        if node.leaf_count != entries:
            out.add(
                "btree-leaf-count",
                f"inner node records leaf_count={node.leaf_count}, actual {entries}",
            )
        if any_dirty and not node.dirty:
            out.add(
                "btree-dirty-propagation",
                "inner node is clean but its subtree holds dirty entries",
            )
        return entries, any_dirty

    total, __ = walk(tree.root, None, None, True)
    if total != tree.key_count:
        out.add(
            "btree-key-count",
            f"tree.key_count={tree.key_count} but the tree holds {total} entries",
        )
    actual = tree.subtree_memory(tree.root)
    if actual != tree.memory_bytes:
        out.add(
            "btree-memory",
            f"incremental memory_bytes={tree.memory_bytes} but recomputed "
            f"footprint is {actual}",
        )
    return out.violations


# ----------------------------------------------------------------------
# disk B+ tree / buffer pool checks
# ----------------------------------------------------------------------
def check_disk_btree(tree: DiskBPlusTree) -> list[Violation]:
    """Structural invariants of the page-based B+ tree.

    Pages are fetched through the buffer pool's charged API, so the check
    itself causes faults and evictions — deliberate: the sanitizer sees
    exactly what the tree would see.
    """
    out = _Collector()
    leaf_order: list[int] = []
    total = 0

    def walk(pid: int, low: Optional[bytes], high: Optional[bytes]) -> None:
        nonlocal total
        page = tree.pool.get_page(pid)
        if page.payload_bytes() > tree.page_size:
            out.add(
                "diskbtree-page-size",
                f"page {pid} payload {page.payload_bytes()}B exceeds the "
                f"{tree.page_size}B page size",
            )
        if isinstance(page, LeafPage):
            leaf_order.append(pid)
            if len(page.values) != len(page.keys):
                out.add(
                    "diskbtree-parallel-arrays",
                    f"leaf page {pid}: {len(page.keys)} keys, "
                    f"{len(page.values)} values",
                )
            for i, key in enumerate(page.keys):
                if i > 0 and page.keys[i - 1] >= key:
                    out.add(
                        "diskbtree-order",
                        f"leaf page {pid} keys out of order at index {i}",
                    )
                if (low is not None and key < low) or (high is not None and key >= high):
                    out.add(
                        "diskbtree-bounds",
                        f"leaf page {pid} key {key!r} escapes [{low!r}, {high!r})",
                    )
            total += len(page.keys)
            return
        if len(page.children) != len(page.separators) + 1:
            out.add(
                "diskbtree-arity",
                f"inner page {pid} has {len(page.children)} children for "
                f"{len(page.separators)} separators",
            )
            return
        for i, sep in enumerate(page.separators):
            if i > 0 and page.separators[i - 1] >= sep:
                out.add(
                    "diskbtree-order",
                    f"inner page {pid} separators out of order at index {i}",
                )
            if (low is not None and sep < low) or (high is not None and sep >= high):
                out.add(
                    "diskbtree-bounds",
                    f"inner page {pid} separator {sep!r} escapes [{low!r}, {high!r})",
                )
        for i, child in enumerate(page.children):
            child_low = low if i == 0 else page.separators[i - 1]
            child_high = high if i == len(page.children) - 1 else page.separators[i]
            walk(child, child_low, child_high)

    walk(tree._root_pid, None, None)
    if total != tree.key_count:
        out.add(
            "diskbtree-key-count",
            f"tree.key_count={tree.key_count} but the pages hold {total} entries",
        )

    # The next_leaf chain must visit exactly the tree's leaves, in tree
    # order, with globally sorted keys (range scans depend on all three).
    chained: list[int] = []
    pid: Optional[int] = leaf_order[0] if leaf_order else None
    last_key: Optional[bytes] = None
    while pid is not None and len(chained) <= len(leaf_order):
        chained.append(pid)
        page = tree.pool.get_page(pid)
        if not isinstance(page, LeafPage):
            out.add("diskbtree-chain", f"next_leaf chain reaches inner page {pid}")
            break
        for key in page.keys:
            if last_key is not None and key <= last_key:
                out.add(
                    "diskbtree-chain",
                    f"leaf chain key order broken at page {pid}: "
                    f"{last_key!r} !< {key!r}",
                )
            last_key = key
        pid = page.next_leaf
    if chained != leaf_order:
        out.add(
            "diskbtree-chain",
            f"leaf chain visits pages {chained} but the tree walk found "
            f"{leaf_order}",
        )
    return out.violations


def check_no_leaked_pins(pool: BufferPool) -> list[Violation]:
    """Between operations every frame's pin count must be zero."""
    out = _Collector()
    for pid, frame in pool._frames.items():
        if frame.pins != 0:
            out.add(
                "bufferpool-pin-leak",
                f"page {pid} holds {frame.pins} pin(s) while the pool is idle",
            )
    return out.violations


def check_buffer_pool(pool: BufferPool) -> list[Violation]:
    """Frame-table / eviction-policy bookkeeping agreement."""
    out = _Collector()
    policy = pool.policy
    for problem in policy.self_check():
        out.add("bufferpool-policy", f"{policy.name}: {problem}")
    tracked = set(policy.keys())
    if tracked != set(pool._frames):
        missing = set(pool._frames) - tracked
        extra = tracked - set(pool._frames)
        out.add(
            "bufferpool-policy",
            f"eviction policy and frame table disagree (missing={sorted(missing)}, "
            f"stale={sorted(extra)})",
        )
    expected = len(pool._frames) * pool.config.page_size
    if policy.used_bytes != expected:
        out.add(
            "bufferpool-bytes",
            f"policy accounts {policy.used_bytes} resident bytes but the frame "
            f"table holds {expected}",
        )
    pinned = sum(1 for f in pool._frames.values() if f.pins > 0)
    if pinned == 0 and len(pool._frames) > pool.capacity_frames:
        out.add(
            "bufferpool-overcommit",
            f"{len(pool._frames)} frames resident with nothing pinned, but the "
            f"budget is {pool.capacity_frames} frames",
        )
    for pid, frame in pool._frames.items():
        if frame.pins < 0:
            out.add("bufferpool-pins", f"page {pid} has negative pin count {frame.pins}")
    return out.violations


def check_policy_cache(cache: PolicyCache, label: str = "cache") -> list[Violation]:
    """Entry-table / policy-metadata / byte-budget agreement of one cache."""
    out = _Collector()
    policy = cache.policy
    for problem in policy.self_check():
        out.add("cache-policy", f"{label} [{policy.name}]: {problem}")
    tracked = set(policy.keys())
    entries = set(cache._entries)
    if tracked != entries:
        missing = sorted(entries - tracked, key=repr)
        stale = sorted(tracked - entries, key=repr)
        out.add(
            "cache-policy",
            f"{label}: policy and entry table disagree (missing={missing!r}, "
            f"stale={stale!r})",
        )
    charged = sum(size for __, size in cache._entries.values())
    if cache.used_bytes != charged:
        out.add(
            "cache-bytes",
            f"{label}: used_bytes={cache.used_bytes} but entries charge {charged}",
        )
    if policy.used_bytes != cache.used_bytes:
        out.add(
            "cache-bytes",
            f"{label}: policy accounts {policy.used_bytes} bytes, cache "
            f"accounts {cache.used_bytes}",
        )
    if cache.used_bytes > cache.capacity_bytes:
        out.add(
            "cache-budget",
            f"{label}: {cache.used_bytes} resident bytes exceed the "
            f"{cache.capacity_bytes}-byte budget",
        )
    return out.violations


class CacheSanitizer:
    """Periodic consistency checks over a set of labelled ``PolicyCache``s.

    The cache-sweep harness registers every byte cache of the system under
    test; ``after_op`` sweeps them every ``interval`` operations and raises
    :class:`CheckError` on the first inconsistency (resident bytes over
    budget, policy metadata out of sync with the entry table).
    """

    def __init__(self, caches: dict[str, PolicyCache], interval: int = 256) -> None:
        self.caches = dict(caches)
        self.interval = max(1, interval)
        self.checks_run = 0
        self._ops = 0

    def after_op(self) -> None:
        self._ops += 1
        if self._ops % self.interval == 0:
            self.check_now()

    def check_now(self) -> None:
        self.checks_run += 1
        violations: list[Violation] = []
        for label, cache in self.caches.items():
            violations += check_policy_cache(cache, label)
        if violations:
            raise CheckError(violations)


# ----------------------------------------------------------------------
# LSM checks
# ----------------------------------------------------------------------
def check_lsm(store: LSMStore, max_deep_tables: Optional[int] = None) -> list[Violation]:
    """Level, table, bloom, and tombstone invariants of the LSM store.

    ``max_deep_tables`` bounds how many SSTables are read block-by-block
    (newest first); the level-shape checks always cover every table.  The
    tombstone-visibility check needs the newest version of every key, so
    it only runs when the budget covers the whole store.
    """
    out = _Collector()
    for violation in check_policy_cache(store.block_cache, "lsm-block-cache"):
        out.add(violation.check, violation.message)
    if store.row_cache is not None:
        for violation in check_policy_cache(store.row_cache, "lsm-row-cache"):
            out.add(violation.check, violation.message)
    for level in range(1, store.config.max_levels):
        tables = store.levels[level]
        for i, table in enumerate(tables):
            if table.min_key > table.max_key:
                out.add(
                    "lsm-table-range",
                    f"L{level} table {table.table_id}: min_key > max_key",
                )
            if i > 0:
                prev = tables[i - 1]
                if prev.min_key > table.min_key:
                    out.add(
                        "lsm-level-order",
                        f"L{level} tables {prev.table_id},{table.table_id} "
                        "not sorted by min_key",
                    )
                if prev.max_key >= table.min_key:
                    out.add(
                        "lsm-level-overlap",
                        f"L{level} tables {prev.table_id},{table.table_id} "
                        f"overlap: {prev.max_key!r} >= {table.min_key!r}",
                    )

    # Deep per-table checks, newest first so a truncated budget still
    # covers the tables reads consult first.
    ordered = list(store.levels[0])
    for level in range(1, store.config.max_levels):
        ordered.extend(store.levels[level])
    budget = len(ordered) if max_deep_tables is None else max_deep_tables
    deep = ordered[: max(0, budget)]
    newest: dict[bytes, bytes] = {}
    for key, value in store._memtable.items():
        newest.setdefault(key, value)
    for table in deep:
        # Bypass the store's block cache: probe reads must not warm it
        # (cache-state perturbation would change later real reads).
        entries = list(table.iter_all(None))
        if len(entries) != table.entry_count:
            out.add(
                "lsm-table-count",
                f"table {table.table_id} holds {len(entries)} entries, "
                f"metadata says {table.entry_count}",
            )
        for i, (key, __) in enumerate(entries):
            if i > 0 and entries[i - 1][0] >= key:
                out.add(
                    "lsm-table-order",
                    f"table {table.table_id} keys out of order at index {i}",
                )
            if not table.bloom.may_contain(key):
                out.add(
                    "lsm-bloom",
                    f"table {table.table_id} stores {key!r} but its bloom "
                    "filter denies it",
                )
        if entries:
            if entries[0][0] != table.min_key or entries[-1][0] != table.max_key:
                out.add(
                    "lsm-table-range",
                    f"table {table.table_id} metadata range "
                    f"[{table.min_key!r}, {table.max_key!r}] does not match its "
                    f"entries [{entries[0][0]!r}, {entries[-1][0]!r}]",
                )
        for key, value in entries:
            newest.setdefault(key, value)

    if len(deep) == len(ordered):
        probes = 0
        for key, value in newest.items():
            if value != TOMBSTONE:
                continue
            probes += 1
            if probes > 64:
                break
            if store.get(key) is not None:
                out.add(
                    "lsm-tombstone",
                    f"key {key!r} reads back although its newest version is a "
                    "tombstone",
                )
    return out.violations


# ----------------------------------------------------------------------
# engine-level checks
# ----------------------------------------------------------------------
class ClockMonotonicityGuard:
    """The simulated clocks must never run backwards.

    The scheduler's charge re-booking moves foreground nanoseconds onto
    the background account, so the sound invariant is on the *sum* of the
    two CPU accounts (plus, independently, the disk's busy time).
    """

    def __init__(self, runtime: "EngineRuntime") -> None:
        self.runtime = runtime
        self._last_cpu_total = runtime.clock.cpu_ns + runtime.clock.background_ns
        self._last_disk = runtime.disk.busy_ns

    def observe(self) -> list[Violation]:
        out = _Collector()
        cpu_total = self.runtime.clock.cpu_ns + self.runtime.clock.background_ns
        if cpu_total < self._last_cpu_total:
            out.add(
                "clock-monotonic",
                f"total CPU time went backwards: {self._last_cpu_total:.0f}ns "
                f"-> {cpu_total:.0f}ns",
            )
        disk = self.runtime.disk.busy_ns
        if disk < self._last_disk:
            out.add(
                "clock-monotonic",
                f"disk busy time went backwards: {self._last_disk:.0f}ns "
                f"-> {disk:.0f}ns",
            )
        self._last_cpu_total = cpu_total
        self._last_disk = disk
        return out.violations


def check_release_watermark(index: "IndeXY", released: int) -> list[Violation]:
    """After a release cycle that freed memory, Index X must sit at or
    below the high watermark (overshoot *below* the low watermark is
    allowed — Algorithm 1's margin works in bytes, not exactness)."""
    if released <= 0:
        return []
    memory = index.x.memory_bytes
    high = index.config.high_watermark_bytes
    if memory > high:
        return [
            Violation(
                "release-watermark",
                f"release cycle freed {released}B but Index X still holds "
                f"{memory}B, above the high watermark {high}B",
            )
        ]
    return []


def check_flush_coherence(index: "IndeXY") -> list[Violation]:
    """After ``flush()``: X holds no dirty entries and Y agrees with X."""
    out = _Collector()
    root = index.x.root_ref()
    dirty = sum(1 for __ in index.x.iter_dirty_entries(root))
    if dirty:
        out.add(
            "flush-dirty",
            f"{dirty} entr(ies) are still dirty in Index X after a flush",
        )
    for key, value in index.x.items():
        stored = index.y.get(key)
        if stored != value:
            out.add(
                "flush-coherence",
                f"key {key!r} is {value!r} in X but {stored!r} in Y after a flush",
            )
    return out.violations


def check_indexy(index: "IndeXY") -> list[Violation]:
    """Dispatch the structural checks for one IndeXY's X and Y."""
    violations: list[Violation] = []
    x = index.x
    if isinstance(x, ARTIndexX):
        violations += check_art(x.tree)
        violations += check_art_memory(x.tree)
        auditor = getattr(index.precleaner, "auditor", None)
        if auditor is not None:
            violations += auditor.audit(iter_art_inner_nodes(x.tree))
    elif isinstance(x, BTreeIndexX):
        violations += check_btree(x.tree)
        auditor = getattr(index.precleaner, "auditor", None)
        if auditor is not None:
            violations += auditor.audit(iter_btree_nodes(x.tree))
    violations += _check_index_y(index.y)
    return violations


def _check_index_y(y: Any) -> list[Violation]:
    if isinstance(y, LSMStore):
        return check_lsm(y)
    if isinstance(y, RoutedIndexY):
        out: list[Violation] = []
        for backend in y.backends.values():
            out += _check_index_y(backend)
        return out
    tree = getattr(y, "tree", None)
    if isinstance(tree, DiskBPlusTree):
        out = check_disk_btree(tree)
        out += check_no_leaked_pins(tree.pool)
        out += check_buffer_pool(tree.pool)
        return out
    return []


# ----------------------------------------------------------------------
# orchestrators
# ----------------------------------------------------------------------
class IndexSanitizer:
    """Hook-point orchestration for one :class:`~repro.core.indexy.IndeXY`.

    Cheap monotonicity checks run on every operation; the full structural
    sweep runs every ``interval`` operations and at the release/flush hook
    points.  Any violation raises :class:`CheckError`.
    """

    def __init__(
        self,
        index: "IndeXY",
        interval: int = 256,
        max_deleted_tracked: int = 512,
    ) -> None:
        self.index = index
        self.interval = max(1, interval)
        self.max_deleted_tracked = max_deleted_tracked
        self.guard = ClockMonotonicityGuard(index.runtime)
        self.checks_run = 0
        self._ops = 0
        #: recently deleted keys (insertion-ordered, bounded) — the
        #: no-resurrection sample of the structural sweep.
        self._deleted: dict[bytes, None] = {}

    # -- bookkeeping ----------------------------------------------------
    def note_insert(self, key: bytes) -> None:
        self._deleted.pop(key, None)

    def note_delete(self, key: bytes) -> None:
        self._deleted[key] = None
        while len(self._deleted) > self.max_deleted_tracked:
            self._deleted.pop(next(iter(self._deleted)))

    # -- hook points ----------------------------------------------------
    def after_op(self) -> None:
        violations = self.guard.observe()
        self._ops += 1
        if self._ops % self.interval == 0:
            with self.index.runtime.observation():
                violations += self.structural_violations()
        self._raise(violations)

    def after_release(self, released: int) -> None:
        violations = self.guard.observe()
        with self.index.runtime.observation():
            violations += check_release_watermark(self.index, released)
            violations += self.structural_violations()
        self._raise(violations)

    def after_flush(self) -> None:
        violations = self.guard.observe()
        with self.index.runtime.observation():
            violations += check_flush_coherence(self.index)
            violations += self.structural_violations()
        self._raise(violations)

    def check_now(self) -> None:
        """Run the full sweep immediately (tests, checkpoints)."""
        violations = self.guard.observe()
        with self.index.runtime.observation():
            violations += self.structural_violations()
        self._raise(violations)

    # -- internals ------------------------------------------------------
    def structural_violations(self) -> list[Violation]:
        self.checks_run += 1
        violations = check_indexy(self.index)
        violations += self._no_resurrection()
        return violations

    def _no_resurrection(self) -> list[Violation]:
        out = _Collector()
        for key in self._deleted:
            if self.index.x.search(key) is not None:
                out.add(
                    "delete-resurrection",
                    f"deleted key {key!r} is readable from Index X",
                )
            if self.index.y.get(key) is not None:
                out.add(
                    "delete-resurrection",
                    f"deleted key {key!r} is readable from Index Y",
                )
        return out.violations

    @staticmethod
    def _raise(violations: list[Violation]) -> None:
        if violations:
            raise CheckError(violations)


class StoreSanitizer:
    """Periodic structural checks for the framework-less baselines.

    ``checker`` returns the structure-specific violations; the guard adds
    clock monotonicity.  Used by B+-B+ (disk tree + pool checks) and the
    RocksDB stand-in (LSM checks).
    """

    def __init__(
        self,
        runtime: "EngineRuntime",
        checker: Callable[[], list[Violation]],
        interval: int = 256,
    ) -> None:
        self.runtime = runtime
        self.checker = checker
        self.interval = max(1, interval)
        self.guard = ClockMonotonicityGuard(runtime)
        self.checks_run = 0
        self._ops = 0

    def after_op(self) -> None:
        violations = self.guard.observe()
        self._ops += 1
        if self._ops % self.interval == 0:
            with self.runtime.observation():
                violations += self.structural_violations()
        if violations:
            raise CheckError(violations)

    def check_now(self) -> None:
        violations = self.guard.observe()
        with self.runtime.observation():
            violations += self.structural_violations()
        if violations:
            raise CheckError(violations)

    def structural_violations(self) -> list[Violation]:
        self.checks_run += 1
        return self.checker()


# ----------------------------------------------------------------------
# shard-router checks
# ----------------------------------------------------------------------
#: deterministic placement probes: the low key range (sequential
#: workloads) plus spread-out large keys (hash avalanche coverage).
_SHARD_PROBE_KEYS: tuple[int, ...] = tuple(range(32)) + tuple(
    (i * 0x9E3779B97F4A7C15) % (1 << 40) for i in range(32)
)


def check_shard_router(router: "ShardRouter") -> list[Violation]:
    """Router-level invariants of the sharded serving layer.

    The router's contract is that its shards are fully independent
    engines: distinct simulated substrates, a partition function that is
    total, in-range, and consistent between the single-op and batch
    paths, and (for ordered partitioners) monotone in the key.  Shard
    *content* is each shard's own sanitizer's job.
    """
    out = _Collector()
    shards = router.shards
    partitioner = router.partitioner
    if partitioner.shards != len(shards):
        out.add(
            "shard-count",
            f"partitioner covers {partitioner.shards} shards but the router "
            f"holds {len(shards)}",
        )
    for attr in ("runtime", "clock", "disk", "stats"):
        objects = [getattr(shard, attr) for shard in shards]
        if len({id(obj) for obj in objects}) != len(objects):
            out.add(
                "shard-isolation",
                f"two shards share one {attr}; shards must be fully "
                "independent engines (no shared substrate)",
            )
    n = len(shards)
    previous = 0
    for key in _SHARD_PROBE_KEYS:
        sid = partitioner.shard_of(key)
        if not 0 <= sid < n:
            out.add(
                "shard-placement",
                f"shard_of({key}) = {sid}, outside [0, {n})",
            )
            continue
        if key not in partitioner.split([key])[sid]:
            out.add(
                "shard-placement",
                f"split() and shard_of() disagree on key {key}",
            )
    if partitioner.ordered:
        for key in sorted(_SHARD_PROBE_KEYS):
            sid = partitioner.shard_of(key)
            if sid < previous:
                out.add(
                    "shard-order",
                    f"ordered partitioner is not monotone: shard_of({key}) = "
                    f"{sid} after shard {previous}",
                )
            previous = max(previous, sid)
    _check_weighted_boundaries(out, partitioner)
    _check_migration(out, router)
    _check_budgets(out, router)
    return out.violations


def _check_weighted_boundaries(out: "_Collector", partitioner: object) -> None:
    """Boundary-table audit of a :class:`WeightedRangePartitioner`.

    The partitioner validates every ``move_boundary``, but the table is
    swapped wholesale by the rebalancer, so the sweep re-audits the live
    tuple: a corrupted table silently misroutes every subsequent key.
    """
    boundaries = getattr(partitioner, "boundaries", None)
    if boundaries is None:
        return
    shards = partitioner.shards  # type: ignore[attr-defined]
    key_space = partitioner.key_space  # type: ignore[attr-defined]
    if len(boundaries) != shards + 1:
        out.add(
            "shard-boundary",
            f"boundary table has {len(boundaries)} entries for {shards} "
            f"shards; need shards + 1",
        )
        return
    if boundaries[0] != 0 or boundaries[-1] != key_space:
        out.add(
            "shard-boundary",
            f"boundary table must span [0, {key_space}], got "
            f"[{boundaries[0]}, {boundaries[-1]}]",
        )
    if any(a >= b for a, b in zip(boundaries, boundaries[1:])):
        out.add(
            "shard-boundary",
            f"boundaries not strictly increasing (an empty shard range): "
            f"{list(boundaries)}",
        )


def _check_migration(out: "_Collector", router: "ShardRouter") -> None:
    """In-flight migration descriptor invariants (DESIGN.md §11).

    The protocol's commit point publishes the descriptor and swaps the
    routing table together, so whenever a sweep observes a descriptor
    the in-flight range must already route to the destination — any key
    in ``[lo, hi)`` resolving to another shard means the double-read
    seam is reading the wrong pair of engines.
    """
    migration = getattr(router, "migration", None)
    if migration is None:
        return
    n = len(router.shards)
    if not (0 <= migration.src < n and 0 <= migration.dst < n):
        out.add(
            "shard-migration",
            f"migration {migration.src}->{migration.dst} names shards "
            f"outside [0, {n})",
        )
        return
    if abs(migration.src - migration.dst) != 1:
        out.add(
            "shard-migration",
            f"migration {migration.src}->{migration.dst} is not between "
            "adjacent shards",
        )
    if not migration.lo < migration.hi:
        out.add(
            "shard-migration",
            f"migration range [{migration.lo}, {migration.hi}) is empty",
        )
    if not migration.lo <= migration.cursor <= migration.hi:
        out.add(
            "shard-migration",
            f"drain cursor {migration.cursor} outside "
            f"[{migration.lo}, {migration.hi}]",
        )
    partitioner = router.partitioner
    for key in (migration.lo, migration.hi - 1):
        sid = partitioner.shard_of(key)
        if sid != migration.dst:
            out.add(
                "shard-migration",
                f"in-flight key {key} routes to shard {sid}, not the "
                f"migration destination {migration.dst}; the routing table "
                "swap and the descriptor are out of sync",
            )


def _check_budgets(out: "_Collector", router: "ShardRouter") -> None:
    """Budget-pool and fleet-change invariants (DESIGN.md §11.4).

    The budget rebalancer and shard splits/merges all re-partition one
    conserved pool, so the per-shard ledger must cover exactly the
    fleet, sum to the pool total (budget moves, it is never created or
    destroyed), and never dip below one byte.  A pending merge retire
    must also agree with the in-flight drain descriptor — a drain whose
    source is not the retiring shard would fold the wrong engine.
    """
    budgets = getattr(router, "shard_budgets", None)
    if budgets is None:
        return
    n = len(router.shards)
    if len(budgets) != n:
        out.add(
            "shard-budget",
            f"budget ledger covers {len(budgets)} shards, fleet holds {n}",
        )
        return
    if any(b < 1 for b in budgets):
        out.add(
            "shard-budget",
            f"a shard's budget fell below one byte: {list(budgets)}",
        )
    total = getattr(router, "total_memory_limit", None)
    if total is not None and sum(budgets) != total:
        out.add(
            "shard-budget",
            f"shard budgets sum to {sum(budgets)} but the pool holds "
            f"{total}; re-splits must conserve the total",
        )
    retiring = getattr(router, "retiring", None)
    if retiring is None:
        return
    if not 0 < retiring < n:
        out.add(
            "shard-merge",
            f"retiring shard {retiring} has no left neighbour in a "
            f"fleet of {n}",
        )
        return
    migration = getattr(router, "migration", None)
    if migration is not None and (
        migration.src != retiring or migration.dst != retiring - 1
    ):
        out.add(
            "shard-merge",
            f"retire of shard {retiring} disagrees with the drain "
            f"descriptor {migration.src}->{migration.dst}; a merge must "
            "drain the retiring shard into its left neighbour",
        )


class ShardSanitizer:
    """Periodic router-level invariant checks for a :class:`ShardRouter`.

    The checks are pure object-graph walks (no charged reads), so no
    ``observation()`` rollback is needed; per-shard structural sweeps run
    inside the shards' own sanitizers.  ``after_batch`` advances the op
    counter by the batch size and sweeps when an interval boundary was
    crossed, so batched and single-op serving check at the same cadence.
    """

    def __init__(self, router: "ShardRouter", interval: int = 1024) -> None:
        self.router = router
        self.interval = max(1, interval)
        self.checks_run = 0
        self._ops = 0

    def after_op(self) -> None:
        self.after_batch(1)

    def after_batch(self, ops: int) -> None:
        if ops <= 0:
            return
        before = self._ops
        self._ops += ops
        if before // self.interval != self._ops // self.interval:
            self.check_now()

    def check_now(self) -> None:
        self.checks_run += 1
        violations = check_shard_router(self.router)
        if violations:
            raise CheckError(violations)


# ----------------------------------------------------------------------
# dynamic ownership oracle for the shard dispatch contract (RL201-RL204)
# ----------------------------------------------------------------------

_T = TypeVar("_T")

#: owner token of the router's own (dormant) substrate: only the
#: foreground thread, outside an armed dispatch, may touch it.
_FOREGROUND = object()


class OwnershipSanitizer:
    """Runtime oracle for the static RL2xx concurrency rules.

    Debug-mode owner tokens stamped on engine state, checked on every
    mutate: each shard's :class:`~repro.sim.runtime.EngineRuntime`
    (clock + stats bus) receives a guard bound to that shard's id, and
    the router's own dormant runtime receives a foreground token.  During
    a dispatch the router routes its thunks through :meth:`dispatch`,
    which wraps each thunk to claim its shard id for the executing
    thread; every subsequent ``charge_cpu``/``bump`` then verifies the
    claim.  The failure modes map one-to-one onto the static rules:

    * a thunk touching another shard's substrate (RL202 aliasing, or a
      cross-shard escape per RL201) → claim/token mismatch;
    * a thunk touching the router's substrate (RL201 escape of shared
      mutable state) → claimed worker vs. foreground token;
    * work submitted around :meth:`ShardWorkerPool.run` (RL204 barrier
      bypass) → a pool thread mutating engine state with no claim at all;
    * mutation of a ``@shared_readonly`` object mid-dispatch (RL203) →
      the armed-dispatch ``__setattr__`` guard raises on its own.

    Serial dispatch is checked identically (the foreground thread claims
    each shard while running its thunk), so the oracle needs no real
    threads to catch ownership bugs deterministically.
    """

    def __init__(self, router: "ShardRouter") -> None:
        self.router = router
        #: thread ident -> owner token claimed by the thunk it is running.
        self._claims: dict[int, object] = {}
        self._home = get_ident()
        self.dispatches = 0
        router.runtime.install_owner_guard(self._guard_for(_FOREGROUND))
        for sid, shard in enumerate(router.shards):
            shard.runtime.install_owner_guard(self._guard_for(sid))

    def uninstall(self) -> None:
        """Remove every guard (back to unchecked mutation)."""
        self.router.runtime.clear_owner_guard()
        for shard in self.router.shards:
            shard.runtime.clear_owner_guard()

    def restamp(self) -> None:
        """Re-bind guards to shard ids after a fleet split or merge.

        Shard ids shift when the fleet grows or shrinks, so every
        surviving engine's guard must be stamped with its new id and a
        freshly built engine gains its guard here.  A retired engine
        keeps its stale guard, which is harmless: it leaves the fleet
        and is only ever touched again from the foreground thread.
        """
        for sid, shard in enumerate(self.router.shards):
            shard.runtime.install_owner_guard(self._guard_for(sid))

    # -- guard construction ---------------------------------------------
    def _guard_for(self, token: object) -> Callable[[], None]:
        def guard() -> None:
            claimed = self._claims.get(get_ident(), _NO_CLAIM)
            if claimed is token:
                return
            if claimed is _NO_CLAIM:
                if get_ident() == self._home:
                    # The foreground thread outside any claim: legal for
                    # single-op routing (pool.run blocks, so this cannot
                    # overlap an armed threaded dispatch).
                    return
                raise CheckError(
                    [
                        Violation(
                            "shard-ownership",
                            "a pool thread mutated engine state without an "
                            "ownership claim; work reached the executor "
                            "around ShardWorkerPool.run (barrier bypass)",
                        )
                    ]
                )
            owner = "the router's foreground substrate" if token is _FOREGROUND else f"shard {token}"
            raise CheckError(
                [
                    Violation(
                        "shard-ownership",
                        f"thunk claiming shard {claimed} mutated {owner}; "
                        "each dispatched thunk owns exactly one shard's "
                        "engine substrate",
                    )
                ]
            )

        return guard

    # -- the dispatch seam ----------------------------------------------
    def dispatch(
        self,
        pool: "ShardWorkerPool",
        sids: Sequence[int],
        thunks: Sequence[Callable[[], _T]],
    ) -> list[_T]:
        """Run ``thunks`` through ``pool`` with ownership claims armed.

        ``sids[i]`` is the shard ``thunks[i]`` is entitled to; duplicate
        ids in one dispatch are an aliasing bug (two thunks would own one
        mutable root — RL202's runtime face) and fail before any thunk
        runs.
        """
        if len(sids) != len(thunks):
            raise CheckError(
                [
                    Violation(
                        "shard-ownership",
                        f"dispatch of {len(thunks)} thunks declared "
                        f"{len(sids)} shard ids; every thunk needs exactly "
                        "one owned shard",
                    )
                ]
            )
        if len(set(sids)) != len(sids):
            raise CheckError(
                [
                    Violation(
                        "shard-ownership",
                        f"duplicate shard ids in one dispatch ({list(sids)}); "
                        "no two thunks may own the same shard between "
                        "partition and scatter",
                    )
                ]
            )
        self.dispatches += 1
        work = [self._claimed(sid, thunk) for sid, thunk in zip(sids, thunks, strict=True)]
        arm_dispatch()
        try:
            return pool.run(work)
        finally:
            disarm_dispatch()

    def _claimed(self, sid: int, thunk: Callable[[], _T]) -> Callable[[], _T]:
        def run() -> _T:
            ident = get_ident()
            self._claims[ident] = sid
            try:
                return thunk()
            finally:
                del self._claims[ident]

        return run


#: sentinel distinguishing "no claim" from any real token.
_NO_CLAIM = object()
