"""Correctness tooling: runtime invariant sanitizers + the repo lint.

Two halves:

* :mod:`repro.check.sanitizer` — composable runtime validators for every
  structure in the stack (ART, B+ tree, disk B+ tree + buffer pool, LSM,
  engine-level coherence), orchestrated by :class:`IndexSanitizer` when
  an :class:`~repro.core.indexy.IndeXY` is built with
  ``debug_checks=True`` and by :class:`StoreSanitizer` for the baseline
  systems.
* :mod:`repro.check.reprolint` — a repo-specific AST lint enforcing the
  EngineRuntime architecture (``python -m repro.check``).
"""

from __future__ import annotations

from repro.check.flags import sanitize_enabled, set_sanitize
from repro.check.reprolint import RULES, Finding, Rule, lint_paths, lint_source
from repro.check.sanitizer import (
    CacheSanitizer,
    CheckBackAuditor,
    CheckError,
    ClockMonotonicityGuard,
    IndexSanitizer,
    StoreSanitizer,
    Violation,
    check_art,
    check_art_memory,
    check_btree,
    check_buffer_pool,
    check_disk_btree,
    check_flush_coherence,
    check_indexy,
    check_lsm,
    check_no_leaked_pins,
    check_policy_cache,
    check_release_watermark,
)

__all__ = [
    "CacheSanitizer",
    "CheckBackAuditor",
    "CheckError",
    "ClockMonotonicityGuard",
    "Finding",
    "IndexSanitizer",
    "RULES",
    "Rule",
    "StoreSanitizer",
    "Violation",
    "check_art",
    "check_art_memory",
    "check_btree",
    "check_buffer_pool",
    "check_disk_btree",
    "check_flush_coherence",
    "check_indexy",
    "check_lsm",
    "check_no_leaked_pins",
    "check_policy_cache",
    "check_release_watermark",
    "lint_paths",
    "lint_source",
    "sanitize_enabled",
    "set_sanitize",
]
