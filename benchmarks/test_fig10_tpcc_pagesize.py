"""Figure 10: TPC-C on-disk-phase throughput by page size.

Shape criterion — the paper's "surprising" result: both page-based
systems get *faster* with larger pages under TPC-C's locally-sequential /
globally-random orderline inserts, because a larger leaf more often stays
resident with spare space and absorbs the next order's lines without any
disk I/O (the opposite of the random-insert Table II trend for B+-B+).
"""

from repro.bench.tpcc_experiments import fig10_tpcc_pagesize


def test_fig10_tpcc_pagesize(once):
    result = once(fig10_tpcc_pagesize, 7_000)
    print("\n" + result["table"])
    ktps = result["ktps"]
    for backend in ("ART-B+", "B+-B+"):
        assert ktps[backend]["16384"] > ktps[backend]["4096"], backend
    # The paper sees roughly a doubling per page-size doubling for B+-B+.
    assert ktps["B+-B+"]["16384"] > 1.5 * ktps["B+-B+"]["4096"]
