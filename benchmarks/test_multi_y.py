"""Benchmark for the Section III-G multi-Index-Y extension."""

from repro.bench.multi_y_bench import multi_y_mixed_workload


def test_multi_y_mixed_workload(once):
    result = once(multi_y_mixed_workload)
    print("\n" + result["table"])
    res = result["results"]
    # No single Y fits both patterns; the routed system beats them both
    # (scans served by the migrated, resident B+ region while random
    # writes keep flowing into the LSM).
    best_single = max(res["ART-LSM"]["kops"], res["ART-B+"]["kops"])
    assert res["ART-Multi"]["kops"] > best_single
    # The router actually re-homed the scanned region and migrated it.
    assert res["ART-Multi"].get("btree_regions", 0) >= 1
