"""Figure 9: TPC-C throughput by thread count (4 KB pages).

Shape criteria: while the workload fits in memory, throughput scales with
thread count (paper: ~8x from 2 to 16 threads); once the memory limit is
reached the disk serializes everything and extra threads stop helping;
ART-LSM holds the highest on-disk throughput.
"""

from repro.bench.tpcc_experiments import fig9_tpcc_threads


def test_fig9_tpcc_threads(once):
    result = once(fig9_tpcc_threads)
    print("\n" + result["table"])
    ktps = result["ktps"]

    for backend in ("ART-LSM", "ART-B+", "B+-B+"):
        in_mem = [ktps[backend][str(t)]["in_memory_ktps"] for t in (2, 4, 8, 16)]
        on_disk = [ktps[backend][str(t)]["on_disk_ktps"] for t in (2, 4, 8, 16)]
        # Phase 1 scales well with threads.
        assert in_mem[-1] > 3 * in_mem[0], backend
        # Phase 2 does not: the single disk is the bottleneck.
        assert on_disk[-1] < 2 * on_disk[0], backend
        # Phase 1 always beats phase 2.
        assert min(in_mem) > max(on_disk), backend

    # ART-LSM dominates the disk-bound phase (LSM absorbs the
    # half-random-half-sequential orderline inserts).
    for t in (2, 4, 8, 16):
        assert (
            ktps["ART-LSM"][str(t)]["on_disk_ktps"]
            > ktps["ART-B+"][str(t)]["on_disk_ktps"]
        )
        assert (
            ktps["ART-LSM"][str(t)]["on_disk_ktps"]
            > ktps["B+-B+"][str(t)]["on_disk_ktps"]
        )
