"""Table II: random write throughput by page size.

Shape criteria: B+-B+ degrades monotonically as pages grow (bigger
read-modify-write amplification per split); ART-B+ improves (its batched,
localized write-backs amortize better over larger pages).
"""

from repro.bench.experiments import table2_pagesize


def test_table2_pagesize(once):
    result = once(table2_pagesize)
    print("\n" + result["table"])
    bb = result["kops"]["B+-B+"]
    artb = result["kops"]["ART-B+"]
    assert bb["4096"] > bb["16384"]  # B+-B+ degrades with page size
    assert artb["16384"] > artb["4096"]  # ART-B+ improves with page size
    # ART-B+ dominates at every page size (paper: 7x-21x).
    for p in ("4096", "8192", "16384"):
        assert artb[p] > 3 * bb[p]
