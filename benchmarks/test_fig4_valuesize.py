"""Figure 4: insert data throughput (MB/s) by value size.

Shape criteria: every system moves more data per second with larger
values; B+-B+ gains the most (fewer nodes per split, less amplification);
ART-LSM and RocksDB gain more modestly and stay close to each other
(both funnel writes through the same LSM machinery).
"""

from repro.bench.experiments import fig4_valuesize


def test_fig4_valuesize(once):
    result = once(fig4_valuesize)
    print("\n" + result["table"])
    mbs = result["mb_per_s"]
    # B+-B+ has the largest relative gain from 64B to 1KB values.
    gain_bb = mbs["B+-B+"]["1024"] / mbs["B+-B+"]["64"]
    gain_lsm = mbs["ART-LSM"]["1024"] / mbs["ART-LSM"]["64"]
    assert gain_bb > gain_lsm
    assert gain_bb > 2.0
    # All systems improve from the smallest to the largest value size.
    for name, series in mbs.items():
        assert series["1024"] > series["8"] * 0.5  # no collapse
    # ART-LSM stays ahead of B+-B+ at every value size.
    for v in ("8", "64", "256", "1024"):
        assert mbs["ART-LSM"][v] > mbs["B+-B+"][v]
