"""Ablations of the framework's design choices (DESIGN.md §5).

These are not paper experiments; they isolate each IndeXY mechanism's
contribution on the ART-LSM configuration.
"""

from repro.bench.ablations import (
    ablation_checkback,
    ablation_precleaning,
    ablation_readcache,
    ablation_release_policy,
    ablation_watermarks,
)


def test_ablation_release_policy(once):
    result = once(ablation_release_policy)
    print("\n" + result["table"])
    res = result["results"]
    # Density-based selection (Algorithm 1) retains the hot set better
    # than blind eviction.
    assert res["density"]["x_hit_ratio"] > res["random"]["x_hit_ratio"]
    assert res["density"]["kops"] >= res["random"]["kops"] * 0.95


def test_ablation_precleaning(once):
    result = once(ablation_precleaning)
    print("\n" + result["table"])
    res = result["results"]
    # Pre-cleaning produces clean subtrees that release for free.  (Its
    # lock-latency benefit is outside the simulated-throughput model, so
    # raw KOPS may not improve; the mechanism's effect must be visible.)
    assert res["on"]["clean_drops"] > res["off"]["clean_drops"]
    assert res["on"]["release_keys_written"] < res["off"]["release_keys_written"]


def test_ablation_checkback(once):
    result = once(ablation_checkback)
    print("\n" + result["table"])
    res = result["results"]
    # Skipping insert-hot regions lets repeated updates coalesce in X:
    # fewer keys ever reach Y.
    assert res["on"]["keys_written_to_y"] < res["off"]["keys_written_to_y"]


def test_ablation_watermarks(once):
    result = once(ablation_watermarks)
    print("\n" + result["table"])
    res = result["results"]
    wide = res["wide (0.80)"]
    narrow = res["narrow (0.94)"]
    # Hysteresis suppresses release thrash by an order of magnitude.
    assert narrow["release_cycles"] > 4 * wide["release_cycles"]


def test_ablation_readcache(once):
    result = once(ablation_readcache)
    print("\n" + result["table"])
    res = result["results"]
    # Index X as the read cache is what makes skewed reads fast.
    assert res["on"]["kops"] > 1.1 * res["off"]["kops"]
    assert res["on"]["x_hit_ratio"] > 2 * res["off"]["x_hit_ratio"]
