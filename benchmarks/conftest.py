"""Shared configuration for the reproduction benchmarks.

Every benchmark runs its experiment exactly once (the experiments measure
*simulated* time internally; wall-clock repetition adds nothing), prints
the reproduced table, and asserts the paper's qualitative shape criteria
listed in DESIGN.md §4.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment a single time under pytest-benchmark."""

    def run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
