"""Figure 6: read throughput by Zipfian skewness.

Shape criteria: ART-X systems convert growing skew into growing
throughput (key-granularity caching captures the hot set); B+-B+ barely
benefits even at S=0.99 (page-granularity caching); all systems order
ART > B+-B+ > RocksDB at high skew.
"""

from repro.bench.experiments import fig6_zipf


def test_fig6_zipf(once):
    result = once(fig6_zipf)
    print("\n" + result["table"])
    kops = result["kops"]
    # ART systems gain strongly from skew.
    assert kops["ART-LSM"]["0.99"] > 2 * kops["ART-LSM"]["0.5"]
    assert kops["ART-B+"]["0.99"] > 2 * kops["ART-B+"]["0.5"]
    # B+-B+ gains far less: its page-granular cache cannot hold the hot
    # keys even at extreme skew.
    gain_bb = kops["B+-B+"]["0.99"] / kops["B+-B+"]["0.5"]
    gain_art = kops["ART-LSM"]["0.99"] / kops["ART-LSM"]["0.5"]
    assert gain_art > gain_bb
    # At high skew the ART systems dominate.
    assert kops["ART-LSM"]["0.9"] > 1.5 * kops["B+-B+"]["0.9"]
