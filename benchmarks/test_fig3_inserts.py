"""Figure 3: insert throughput and memory vs. keys inserted.

Shape criteria (paper Section III-B):

* pre-limit, ART-X systems run ~2-3x faster than the coupled B+-B+;
* ART-X systems hold more keys before reaching the memory limit;
* post-limit random inserts: ART-LSM is an order of magnitude above the
  B+-tree-Y systems; B+-B+ collapses hardest;
* framework systems keep their memory pinned at the limit once reached;
* sequential inserts soften the post-limit collapse for B+-Y systems.
"""

from repro.bench.experiments import LIMIT, fig3_inserts


def _start_end(series, name):
    samples = series[name]
    return samples[0]["kops"], samples[-1]["kops"]


def test_fig3_random_inserts(once):
    result = once(fig3_inserts, "random")
    print("\n" + result["table"])
    series = result["series"]
    art_start, art_end = _start_end(series, "ART-LSM")
    artb_start, artb_end = _start_end(series, "ART-B+")
    bb_start, bb_end = _start_end(series, "B+-B+")

    # Pre-limit CPU advantage of ART as Index X.
    assert art_start > 1.8 * bb_start
    assert artb_start > 1.8 * bb_start
    # Post-limit: LSM Index Y absorbs random writes far better than B+ Y.
    assert art_end > 8 * bb_end
    # ART-B+ still beats the coupled design (pre-cleaned batched writes).
    assert artb_end > bb_end
    # Framework keeps Index X memory at the limit.
    peak_mb = max(s["memory_mb"] for s in series["ART-LSM"])
    assert peak_mb <= 1.5 * LIMIT / (1 << 20)

    # ART's compact structure delays the memory limit (Figure 3b): it
    # reaches 90% of its peak footprint no earlier than B+-B+ does.
    def keys_at_saturation(name, threshold_fraction=0.9):
        samples = series[name]
        peak = max(s["memory_mb"] for s in samples)
        for s in samples:
            if s["memory_mb"] >= threshold_fraction * peak:
                return s["keys"]
        return samples[-1]["keys"]

    assert keys_at_saturation("ART-LSM") >= keys_at_saturation("B+-B+")


def test_fig3_sequential_inserts(once):
    result = once(fig3_inserts, "sequential")
    print("\n" + result["table"])
    series = result["series"]
    __, art_end = _start_end(series, "ART-LSM")
    __, bb_end = _start_end(series, "B+-B+")
    # Sequential inserts are kinder to B+ Y (append-only splits), so the
    # gap narrows versus random inserts but ART-LSM still leads.
    assert art_end > bb_end
