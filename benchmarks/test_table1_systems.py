"""Table I: the four compared system compositions."""

from repro.bench.experiments import table1_systems


def test_table1_systems(once):
    result = once(table1_systems)
    print("\n" + result["table"])
    assert set(result["composition"]) == {"ART-LSM", "ART-B+", "B+-B+", "RocksDB"}
    assert result["composition"]["ART-LSM"]["index_y"] == "LSM-tree Index"
    assert result["composition"]["B+-B+"]["index_x"] == "B+ Index"
