"""Figure 7: lookup throughput under a shifting working set.

Shape criteria: ART-B+ outperforms B+-B+ at every access unit; larger
access units raise throughput several-fold (spatial locality absorbed by
the transfer buffer); phase transitions show as throughput dips that
recover (the framework re-adapts Index X to the new working set).
"""

from repro.bench.experiments import fig7_shifting


def _avg(samples):
    return sum(s["kops"] for s in samples) / len(samples)


def test_fig7_shifting(once):
    result = once(fig7_shifting)
    print("\n" + result["table"])
    series = result["series"]

    # ART-B+ above B+-B+ at every unit (page granularity wastes memory on
    # the scattered hot keys).
    for unit in ("1", "5", "10"):
        assert _avg(series["ART-B+"][unit]) > _avg(series["B+-B+"][unit])

    # Larger access units multiply throughput (paper: 4.3x at 5, 7.2x at 10).
    art1 = _avg(series["ART-B+"]["1"])
    art5 = _avg(series["ART-B+"]["5"])
    art10 = _avg(series["ART-B+"]["10"])
    assert art5 > 2.5 * art1
    assert art10 > 4 * art1

    # Transitions dip below the steady state but recover.
    samples = series["ART-B+"]["1"]
    avg = _avg(samples)
    assert min(s["kops"] for s in samples) < avg
    assert max(s["kops"] for s in samples) > avg
