"""Figure 8: YCSB Load and A-F throughput.

Shape criteria: Load shows the largest gap (ART systems an order of
magnitude and more above B+-B+); B+-B+ improves monotonically from A to C
as the update share falls; workload E (scans) is the one benchmark where
the LSM Index Y loses its advantage; F's read-modify-writes hurt B+-B+
like A does.
"""

from repro.bench.experiments import fig8_ycsb


def test_fig8_ycsb(once):
    result = once(fig8_ycsb)
    print("\n" + result["table"])
    kops = result["kops"]
    art_lsm, art_b, bb = kops["ART-LSM"], kops["ART-B+"], kops["B+-B+"]

    # Load: the paper's >30x headline gap.  ART-LSM reproduces it fully;
    # ART-B+ lands at ~9x here because its pre-cleaning write-backs pay
    # B+-page read-modify-writes that the paper's larger batches amortize
    # better (see EXPERIMENTS.md).
    assert art_lsm["Load"] > 10 * bb["Load"]
    assert art_b["Load"] > 5 * bb["Load"]
    # B+-B+ recovers as updates shrink A -> B -> C.
    assert bb["C"] > bb["A"]
    # ART systems stay ahead on every non-scan workload.
    for wl in ("A", "B", "C", "D", "F"):
        assert art_lsm[wl] > bb[wl], wl
        assert art_b[wl] > bb[wl], wl
    # E: scans neutralize the LSM advantage — ART-LSM loses its lead and
    # finishes at or below the B+-tree-Y systems (paper: >40% below).
    assert art_lsm["E"] < art_lsm["D"] / 2
    assert art_lsm["E"] <= 1.2 * bb["E"]
