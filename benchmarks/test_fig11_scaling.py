"""Figure 11: in-memory vs. on-disk TPC-C scaling plus disk I/O.

Shape criteria: in-memory throughput scales with threads while on-disk
throughput stays flat; during the disk-bound phase ART-LSM sustains the
highest disk throughput (most sequential writes), ART-B+ next, B+-B+
lowest.
"""

from repro.bench.tpcc_experiments import fig11_scaling


def test_fig11_scaling(once):
    result = once(fig11_scaling)
    print("\n" + result["table"])
    res = result["results"]

    for backend in ("ART-LSM", "ART-B+", "B+-B+"):
        in2 = res[backend]["2"]["in_memory_ktps"]
        in16 = res[backend]["16"]["in_memory_ktps"]
        on2 = res[backend]["2"]["on_disk_ktps"]
        on16 = res[backend]["16"]["on_disk_ktps"]
        assert in16 > 3 * in2, backend  # in-memory scales
        assert on16 < 2 * on2, backend  # on-disk does not

    # Disk throughput ordering during the on-disk phase (paper Figure 11):
    # the more sequential the writes, the higher the achieved MB/s.
    disk = {b: res[b]["8"]["disk_mb_per_s"] for b in res}
    assert disk["ART-LSM"] > disk["B+-B+"]
