"""Figure 5: read throughput by working-set size.

Shape criteria: ART-X systems serve small working sets at multiples of
B+-B+'s throughput and keep working sets in memory far longer (B+-B+
caches whole pages for sparse hot keys, wasting its budget); RocksDB's
row cache helps only the smallest working sets.
"""

from repro.bench.experiments import fig5_workingset


def test_fig5_workingset(once):
    result = once(fig5_workingset)
    print("\n" + result["table"])
    kops = result["kops"]
    smallest = str(result["working_sets"][0])
    mid = str(result["working_sets"][2])  # 1k keys

    # Small working sets: ART systems are several-fold above B+-B+
    # (paper reports ~7x when everything fits).
    assert kops["ART-LSM"][smallest] > 3 * kops["B+-B+"][smallest]
    assert kops["ART-B+"][smallest] > 3 * kops["B+-B+"][smallest]
    # Mid-size working sets fit in ART's memory but not in page-granular
    # B+-B+ frames: the gap widens.
    assert kops["ART-LSM"][mid] > 5 * kops["B+-B+"][mid]
    # RocksDB beats B+-B+ only while its row cache covers the working set.
    assert kops["RocksDB"][smallest] > kops["B+-B+"][smallest]
    # Throughput decreases as the working set outgrows memory.
    art = [kops["ART-LSM"][str(ws)] for ws in result["working_sets"]]
    assert art[0] > art[-1]
